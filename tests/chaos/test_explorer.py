"""Explorer end-to-end: discovery, determinism, worker-count invariance.

These run real (small) workloads, so they are the slowest chaos tests;
the workload is kept to a few requests and the schedule budget tiny.
"""

import dataclasses

import pytest

from repro import faults
from repro.chaos.explore import ExploreConfig, ExplorationReport, Explorer
from repro.chaos.schedule import FaultSchedule
from repro.chaos.space import FaultSpace
from repro.chaos.workloads import WorkloadConfig


def mini_config(**overrides) -> ExploreConfig:
    workload = WorkloadConfig(
        requests=overrides.pop("requests", 3),
        shards=2,
        jobs=overrides.pop("jobs", 1),
    )
    return ExploreConfig(
        workload=workload,
        singles_per_site=overrides.pop("singles_per_site", 1),
        pairs=overrides.pop("pairs", 2),
        **overrides,
    )


class TestRecordMode:
    def test_record_sites_counts_by_scope(self):
        with faults.record_sites() as rec:
            faults._observe("solver_timeout")
            faults._observe("solver_timeout")
            faults.set_scope("shard-0")
            try:
                faults._observe("journal_enospc")
            finally:
                faults.set_scope("main")
        counts = rec.counts()
        assert counts[("solver_timeout", "main")] == 2
        assert counts[("journal_enospc", "shard-0")] == 1
        # Outside the block, observations go nowhere.
        faults._observe("solver_timeout")
        assert rec.counts()[("solver_timeout", "main")] == 2

    def test_chaos_override_neutralizes_environment(self, monkeypatch):
        monkeypatch.setenv(faults.CHAOS_ENV, "worker_crash=%2")
        assert faults.chaos_plan() is not None
        with faults.chaos_override(None):
            assert faults.chaos_plan() is None
            # Nesting: the innermost override wins.
            inner = faults.FaultPlan(journal_enospc=1)
            with faults.chaos_override(inner):
                assert faults.chaos_plan() is inner
            assert faults.chaos_plan() is None
        assert faults.chaos_plan() is not None


class TestDiscovery:
    def test_discovery_enumerates_the_fault_surface(self):
        explorer = Explorer(mini_config())
        space, reference = explorer.discover()
        sites = space.sites()
        # The service burst reaches the full stack: solver, store,
        # journal, shard, and clock sites all appear.
        assert len(sites) >= 10
        for expected in (
            "solver_timeout", "journal_enospc", "fsync_stall",
            "torn_write_mid_file", "clock_skew", "store_enospc",
            "shard_death", "service_overload",
        ):
            assert expected in sites, f"{expected} not discovered"
        # Journal appends are attributed to shard scopes, solver calls
        # to the submitting context.
        assert any(s.startswith("shard-") for s in space.scopes("journal_enospc"))
        assert space.scopes("solver_timeout") == ["main"]
        # The fault-free reference is clean.
        assert all(o["status"] == "ok" for o in reference.outcomes)
        assert not reference.store_degraded
        assert not reference.journal_degraded

    def test_discovery_is_deterministic(self):
        explorer = Explorer(mini_config())
        space_a, _ = explorer.discover()
        space_b, _ = explorer.discover()
        assert space_a.to_json() == space_b.to_json()


class TestExploration:
    @pytest.fixture(scope="class")
    def baseline(self) -> ExplorationReport:
        return Explorer(mini_config()).explore()

    def test_all_invariants_hold_under_single_and_pairwise_faults(
        self, baseline
    ):
        assert len(baseline.reports) >= 10
        assert baseline.failures == [], (
            "unexpected invariant failures:\n" + "\n".join(
                f"{r.schedule_id}: {r.failed()} "
                f"{ {k: v['detail'] for k, v in r.verdicts.items() if not v['ok']} }"
                for r in baseline.reports if not r.ok
            )
        )

    def test_canonical_report_is_rerun_stable(self, baseline):
        again = Explorer(mini_config()).explore()
        assert again.canonical() == baseline.canonical()

    def test_canonical_report_is_worker_count_invariant(self, baseline):
        jobs4 = Explorer(mini_config(jobs=4)).explore()
        assert jobs4.canonical() == baseline.canonical()

    def test_extra_schedules_replay_and_dedupe(self, baseline):
        extra = FaultSchedule.of({"shard_death": 1})
        config = mini_config()
        config.extra = [extra, extra]
        schedules = Explorer(config).schedules(
            FaultSpace.from_json(baseline.space.to_json())
        )
        ids = [s.schedule_id for s in schedules]
        assert ids.count("shard_death@1") == 1


class TestReplaySemantics:
    def test_journal_damage_is_excused_but_contained(self):
        # Arm a journal fault directly: invariants must pass (the damage
        # is excused for armed damage sites) and accounting stays closed.
        explorer = Explorer(mini_config())
        space, reference = explorer.discover()
        assert space.total("journal_enospc") >= 1
        report = explorer.run_schedule(
            FaultSchedule.of({"journal_enospc": 1}), reference
        )
        assert report.ok, report.to_json()

    def test_unexcused_corruption_fails_the_suite(self):
        # A synthetic result with interior corruption under a schedule
        # that did NOT arm journal damage must fail journal_replayable.
        from repro.chaos.invariants import check_invariants
        from repro.chaos.workloads import WorkloadResult
        from repro.service.scrub import JournalScrub

        result = WorkloadResult(
            outcomes=[{"status": "ok", "signature": "x"}],
            scrubs=[JournalScrub(path="j.jsonl", interior_corrupt=[2])],
        )
        report = check_invariants(
            FaultSchedule.of({"clock_skew": 1}), result, None
        )
        assert report.failed() == ["journal_replayable"]
        # The same damage under an armed journal fault is excused.
        excused = check_invariants(
            FaultSchedule.of({"torn_write_mid_file": 1}), result, None
        )
        assert excused.ok, excused.to_json()
