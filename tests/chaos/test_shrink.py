"""Shrinker convergence against synthetic oracles (no workload replays)."""

import pytest

from repro.chaos.schedule import FaultSchedule
from repro.chaos.shrink import lower_indices, shrink, shrink_atoms


def armed(schedule: FaultSchedule) -> dict:
    return dict(schedule.sites)


class TestShrinkAtoms:
    def test_converges_to_the_two_culprit_atoms(self):
        # The seeded known-bad pair: the failure needs journal_enospc AND
        # shard_death armed together; the other atoms are noise.
        def fails(schedule: FaultSchedule) -> bool:
            sites = armed(schedule)
            return "journal_enospc" in sites and "shard_death" in sites

        start = FaultSchedule.of({
            "journal_enospc": 3, "shard_death": 2,
            "solver_timeout": 1, "store_enospc": 4,
        })
        assert fails(start)
        atoms = shrink_atoms(start.atoms(), fails)
        assert sorted(atoms) == [("journal_enospc", 3), ("shard_death", 2)]

    def test_single_atom_failure_drops_everything_else(self):
        def fails(schedule: FaultSchedule) -> bool:
            return "torn_write_mid_file" in armed(schedule)

        start = FaultSchedule.of({
            "torn_write_mid_file": 5, "clock_skew": 1,
            "fsync_stall": 2, "service_overload": 3,
        })
        atoms = shrink_atoms(start.atoms(), fails)
        assert atoms == [("torn_write_mid_file", 5)]

    def test_result_is_one_minimal(self):
        # Failure requires at least 3 of the 4 atoms — ddmin must stop at
        # a 3-atom set where removing any single atom passes.
        start = FaultSchedule.of({
            "journal_enospc": 1, "shard_death": 1,
            "solver_timeout": 1, "store_enospc": 1,
        })

        def fails(schedule: FaultSchedule) -> bool:
            return len(schedule.atoms()) >= 3

        atoms = shrink_atoms(start.atoms(), fails)
        assert len(atoms) == 3
        for drop in range(3):
            remaining = [a for i, a in enumerate(atoms) if i != drop]
            assert not fails(FaultSchedule.from_atoms(remaining))


class TestLowerIndices:
    def test_indices_lower_to_one_when_index_is_irrelevant(self):
        def fails(schedule: FaultSchedule) -> bool:
            return "journal_enospc" in armed(schedule)

        atoms = lower_indices([("journal_enospc", 17)], fails)
        assert atoms == [("journal_enospc", 1)]

    def test_indices_stop_at_the_failure_threshold(self):
        # Only fails when the fault lands at call >= 5.
        def fails(schedule: FaultSchedule) -> bool:
            sites = armed(schedule)
            trigger = sites.get("journal_enospc")
            return isinstance(trigger, int) and trigger >= 5

        atoms = lower_indices([("journal_enospc", 17)], fails)
        assert atoms == [("journal_enospc", 5)]


class TestShrink:
    def test_full_shrink_seeded_known_bad_pair(self):
        def fails(schedule: FaultSchedule) -> bool:
            sites = armed(schedule)
            return "journal_enospc" in sites and "shard_death" in sites

        start = FaultSchedule.of({
            "journal_enospc": 9, "shard_death": 4,
            "solver_timeout": 2, "clock_skew": 1, "store_io_error": 6,
        })
        minimal = shrink(start, fails)
        assert minimal.schedule_id == "journal_enospc@1+shard_death@1"

    def test_shrink_refuses_a_passing_schedule(self):
        with pytest.raises(ValueError, match="does not fail"):
            shrink(FaultSchedule.of({"clock_skew": 1}), lambda s: False)

    def test_multi_index_trigger_shrinks_atomwise(self):
        # Failure needs two distinct journal_enospc strikes; shrinker
        # keeps both atoms of the tuple trigger but lowers their indices.
        def fails(schedule: FaultSchedule) -> bool:
            trigger = armed(schedule).get("journal_enospc")
            return isinstance(trigger, tuple) and len(set(trigger)) >= 2

        start = FaultSchedule.of({
            "journal_enospc": (4, 9), "shard_death": 2,
        })
        minimal = shrink(start, fails)
        assert minimal.schedule_id == "journal_enospc@1+2"
