"""Tests for traces and the trace builder."""

import pytest

from repro.profiles import CompactTrace, ExecutionTrace, TraceBuilder


class TestExecutionTrace:
    def test_append_and_iterate(self):
        trace = ExecutionTrace()
        trace.append("f", 0)
        trace.extend([("f", 1), ("g", 0)])
        assert list(trace) == [("f", 0), ("f", 1), ("g", 0)]
        assert len(trace) == 3
        assert trace.procedures() == {"f", "g"}

    def test_per_procedure_transitions_no_calls(self):
        trace = ExecutionTrace([("f", 0), ("f", 1), ("f", 0), ("f", 1)])
        counts = trace.per_procedure_transitions()
        assert counts["f"][(0, 1)] == 2
        assert counts["f"][(1, 0)] == 1


class TestTraceBuilder:
    def test_nested_activations_attribute_edges_correctly(self):
        builder = TraceBuilder()
        builder.enter("main")
        builder.visit(0)
        builder.enter("callee")
        builder.visit(10)
        builder.visit(11)
        builder.leave()
        builder.visit(1)  # main block 0 -> 1, across the call
        builder.leave()
        assert builder.edge_counts["main"] == {(0, 1): 1}
        assert builder.edge_counts["callee"] == {(10, 11): 1}

    def test_recursive_activations_do_not_cross_talk(self):
        builder = TraceBuilder()
        builder.enter("f")
        builder.visit(0)
        builder.enter("f")   # recursive call
        builder.visit(0)
        builder.visit(2)
        builder.leave()
        builder.visit(1)
        builder.leave()
        assert builder.edge_counts["f"] == {(0, 2): 1, (0, 1): 1}

    def test_activation_counts(self):
        builder = TraceBuilder()
        for _ in range(3):
            builder.enter("g")
            builder.visit(0)
            builder.leave()
        assert builder.activation_counts["g"] == 3

    def test_visit_without_enter_raises(self):
        with pytest.raises(RuntimeError):
            TraceBuilder().visit(0)

    def test_leave_without_enter_raises(self):
        with pytest.raises(RuntimeError):
            TraceBuilder().leave()

    def test_max_events_caps_trace_but_not_counts(self):
        builder = TraceBuilder(max_events=2)
        builder.enter("f")
        for block in (0, 1, 2, 3):
            builder.visit(block)
        assert len(builder.trace) == 2
        assert builder.dropped_events == 2
        assert sum(builder.edge_counts["f"].values()) == 3

    def test_keep_events_false(self):
        builder = TraceBuilder(keep_events=False)
        builder.enter("f")
        builder.visit(0)
        builder.visit(1)
        assert len(builder.trace) == 0
        assert builder.edge_counts["f"] == {(0, 1): 1}

    def test_transition_log(self):
        builder = TraceBuilder(keep_transitions=True)
        builder.enter("f")
        builder.visit(0)
        builder.visit(1)
        builder.visit(0)
        assert builder.transition_log["f"] == [(0, 1), (1, 0)]


class TestCompactTrace:
    def test_roundtrip(self):
        trace = ExecutionTrace([("f", 0), ("g", 5), ("f", 1)])
        compact = CompactTrace(trace)
        assert list(compact) == list(trace)
        assert len(compact) == 3
        assert compact.procedures() == {"f", "g"}

    def test_empty(self):
        compact = CompactTrace(ExecutionTrace())
        assert list(compact) == []
