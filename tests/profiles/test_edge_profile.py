"""Tests for edge profiles."""

import pytest

from repro.profiles import (
    EdgeProfile,
    ProfileError,
    ProgramProfile,
    merge_profiles,
    profile_from_counts,
)


class TestEdgeProfile:
    def test_add_and_count(self):
        profile = EdgeProfile()
        profile.add(0, 1, 5)
        profile.add(0, 1, 2)
        assert profile.count(0, 1) == 7
        assert profile.count(0, 9) == 0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            EdgeProfile().add(0, 1, -1)

    def test_out_counts_excludes_zero(self):
        profile = EdgeProfile({(0, 1): 3, (0, 2): 0, (1, 2): 9})
        assert profile.out_counts(0) == {1: 3}

    def test_block_entry_and_exit_counts(self):
        profile = EdgeProfile({(0, 1): 3, (2, 1): 4, (1, 5): 7})
        assert profile.block_entry_count(1) == 7
        assert profile.block_exit_count(1) == 7
        assert profile.total() == 14

    def test_most_frequent_successor_with_ties(self):
        profile = EdgeProfile({(0, 2): 5, (0, 1): 5})
        # Deterministic tie break: smaller block id.
        assert profile.most_frequent_successor(0) == 1

    def test_most_frequent_successor_none_when_unexecuted(self):
        assert EdgeProfile().most_frequent_successor(0) is None

    def test_scaled(self):
        profile = EdgeProfile({(0, 1): 10})
        assert profile.scaled(0.25).count(0, 1) == 2

    def test_check_against_rejects_non_cfg_edges(self, loop_cfg):
        profile = EdgeProfile({(0, 0): 3})
        with pytest.raises(ProfileError):
            profile.check_against(loop_cfg)


class TestProgramProfile:
    def test_json_roundtrip(self):
        profile = profile_from_counts(
            {"f": {(0, 1): 3, (1, 0): 2}, "g": {(0, 1): 1}},
            call_counts={"f": 4},
        )
        restored = ProgramProfile.from_json(profile.to_json())
        assert restored.procedures["f"].counts == {(0, 1): 3, (1, 0): 2}
        assert restored.call_counts == {"f": 4}

    def test_merge(self):
        a = profile_from_counts({"f": {(0, 1): 3}}, {"f": 1})
        b = profile_from_counts({"f": {(0, 1): 2, (1, 2): 1}}, {"f": 2})
        merged = merge_profiles([a, b])
        assert merged["f"].count(0, 1) == 5
        assert merged["f"].count(1, 2) == 1
        assert merged.call_counts["f"] == 3

    def test_check_against_program(self, mini_module, mini_profile):
        mini_profile.check_against(mini_module.program)

    def test_check_against_unknown_procedure(self, mini_module):
        bogus = profile_from_counts({"nope": {(0, 1): 1}})
        with pytest.raises(ProfileError, match="nope"):
            bogus.check_against(mini_module.program)

    def test_branch_statistics(self, mini_module, mini_profile):
        touched = mini_profile.branch_sites_touched(mini_module.program)
        executed = mini_profile.executed_branches(mini_module.program)
        assert 0 < touched <= mini_module.program.total_branch_sites()
        assert executed > touched
