"""Tests for synthetic (Markov-walk) profile generation."""

import random

import pytest

from repro.cfg import Procedure, Program
from repro.profiles import (
    BiasAssignment,
    TraceBuilder,
    expected_profile,
    random_bias_assignment,
    synthesize_profile,
    walk_cfg,
)


class TestBiasAssignment:
    def test_defaults_to_uniform(self, loop_cfg):
        bias = BiasAssignment()
        body = next(b for b in loop_cfg if b.label == "body")
        dist = bias.distribution(loop_cfg, body.block_id)
        assert len(dist) == 4
        assert all(abs(p - 0.25) < 1e-12 for p in dist)

    def test_normalizes(self, diamond_cfg):
        bias = BiasAssignment({diamond_cfg.entry: (3.0, 1.0)})
        dist = bias.distribution(diamond_cfg, diamond_cfg.entry)
        assert dist == (0.75, 0.25)

    def test_wrong_arity_rejected(self, diamond_cfg):
        bias = BiasAssignment({diamond_cfg.entry: (1.0,)})
        with pytest.raises(ValueError, match="probabilities"):
            bias.distribution(diamond_cfg, diamond_cfg.entry)

    def test_zero_distribution_rejected(self, diamond_cfg):
        bias = BiasAssignment({diamond_cfg.entry: (0.0, 0.0)})
        with pytest.raises(ValueError, match="non-positive"):
            bias.distribution(diamond_cfg, diamond_cfg.entry)


class TestRandomBias:
    def test_conditionals_biased(self, loop_cfg):
        bias = random_bias_assignment(loop_cfg, random.Random(0))
        head = next(b for b in loop_cfg if b.label == "head")
        dist = bias.distribution(loop_cfg, head.block_id)
        assert max(dist) >= 0.5

    def test_deterministic_for_seed(self, loop_cfg):
        a = random_bias_assignment(loop_cfg, random.Random(7))
        b = random_bias_assignment(loop_cfg, random.Random(7))
        assert a.probabilities == b.probabilities


class TestWalks:
    def test_walk_follows_cfg_edges(self, loop_cfg):
        bias = random_bias_assignment(loop_cfg, random.Random(1))
        path = walk_cfg(loop_cfg, bias, random.Random(2), max_steps=500)
        assert path[0] == loop_cfg.entry
        for src, dst in zip(path, path[1:]):
            assert dst in loop_cfg.successors(src)

    def test_walk_reaches_return(self, loop_cfg):
        bias = random_bias_assignment(loop_cfg, random.Random(1))
        path = walk_cfg(loop_cfg, bias, random.Random(3), max_steps=100_000)
        assert loop_cfg.block(path[-1]).kind.value == "return"

    def test_synthesize_profile_is_cfg_consistent(self, loop_program):
        cfg = loop_program["main"].cfg
        biases = {"main": random_bias_assignment(cfg, random.Random(5))}
        profile = synthesize_profile(
            loop_program, biases, seed=6, walks_per_procedure=10
        )
        profile.check_against(loop_program)
        assert profile.call_counts["main"] == 10

    def test_synthesize_with_trace_builder(self, loop_program):
        cfg = loop_program["main"].cfg
        biases = {"main": random_bias_assignment(cfg, random.Random(5))}
        builder = TraceBuilder()
        profile = synthesize_profile(
            loop_program, biases, seed=6, walks_per_procedure=5,
            trace_builder=builder,
        )
        # Builder edge counts must agree exactly with the returned profile.
        assert builder.edge_counts["main"] == profile["main"].counts


class TestExpectedProfile:
    def test_diamond_splits_flow(self, diamond_cfg):
        proc = Procedure("p", diamond_cfg)
        bias = BiasAssignment({diamond_cfg.entry: (0.8, 0.2)})
        flow = expected_profile(proc, bias, entries=1000.0)
        left = next(b for b in diamond_cfg if b.label == "left").block_id
        right = next(b for b in diamond_cfg if b.label == "right").block_id
        assert flow[(diamond_cfg.entry, left)] == pytest.approx(800.0)
        assert flow[(diamond_cfg.entry, right)] == pytest.approx(200.0)

    def test_loop_flow_converges_to_geometric_sum(self):
        from repro.cfg import CFGBuilder
        b = CFGBuilder()
        b.block("entry").jump("head")
        b.block("head").cond("body", "exit")
        b.block("body").jump("head")
        b.block("exit").ret()
        cfg = b.build(entry="entry")
        proc = Procedure("p", cfg)
        bias = BiasAssignment({b.id_of("head"): (0.5, 0.5)})
        flow = expected_profile(proc, bias, entries=1.0)
        # Expected visits to head: 1/(1-0.5) = 2; body->head flow: 1.
        assert flow[(b.id_of("body"), b.id_of("head"))] == pytest.approx(1.0, abs=1e-6)
        assert flow[(b.id_of("head"), b.id_of("exit"))] == pytest.approx(1.0, abs=1e-6)

    def test_empirical_matches_expected(self, loop_program):
        """Monte-Carlo counts converge to the closed-form flow."""
        cfg = loop_program["main"].cfg
        bias = random_bias_assignment(cfg, random.Random(11))
        walks = 4000
        profile = synthesize_profile(
            loop_program, {"main": bias}, seed=12,
            walks_per_procedure=walks, max_steps=5000,
        )
        expected = expected_profile(
            loop_program["main"], bias, entries=float(walks)
        )
        for key, expected_flow in expected.items():
            if expected_flow < 50:
                continue
            observed = profile["main"].count(*key)
            assert observed == pytest.approx(expected_flow, rel=0.25)
