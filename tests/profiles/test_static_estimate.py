"""Tests for static (profile-free) edge-weight estimation."""

import pytest

from repro.cfg import CFGBuilder
from repro.profiles.static_estimate import (
    estimate_edge_profile,
    estimate_program_profile,
)


class TestHeuristics:
    def test_loop_back_edge_is_hot(self, loop_cfg):
        profile = estimate_edge_profile(loop_cfg)
        head = next(b for b in loop_cfg if b.label == "head")
        body = next(b for b in loop_cfg if b.label == "body")
        exit_block = next(b for b in loop_cfg if b.label == "exit")
        into_loop = profile.count(head.block_id, body.block_id)
        out_of_loop = profile.count(head.block_id, exit_block.block_id)
        assert into_loop > 3 * out_of_loop

    def test_flow_conservation_approximately(self, loop_cfg):
        profile = estimate_edge_profile(loop_cfg)
        for block in loop_cfg:
            if block.block_id == loop_cfg.entry or not block.successors:
                continue
            inflow = profile.block_entry_count(block.block_id)
            outflow = profile.block_exit_count(block.block_id)
            if inflow + outflow == 0:
                continue
            assert inflow == pytest.approx(outflow, rel=0.05, abs=3)

    def test_exit_heuristic_discounts_return_arm(self):
        b = CFGBuilder()
        b.block("entry", padding=1).cond("work", "bail")
        b.block("work", padding=2).jump("exit")
        b.block("bail", padding=1).ret()
        b.block("exit", padding=1).ret()
        cfg = b.build(entry="entry")
        profile = estimate_edge_profile(cfg)
        work_flow = profile.count(b.id_of("entry"), b.id_of("work"))
        bail_flow = profile.count(b.id_of("entry"), b.id_of("bail"))
        assert work_flow > bail_flow

    def test_multiway_splits_by_slots(self):
        b = CFGBuilder()
        b.block("s", padding=1).switch(["a", "a", "a", "c"])
        b.block("a", padding=1).ret()
        b.block("c", padding=1).ret()
        cfg = b.build(entry="s")
        profile = estimate_edge_profile(cfg)
        assert profile.count(b.id_of("s"), b.id_of("a")) == pytest.approx(
            3 * profile.count(b.id_of("s"), b.id_of("c")), rel=0.05
        )

    def test_profile_is_cfg_consistent(self, loop_cfg):
        estimate_edge_profile(loop_cfg).check_against(loop_cfg)

    def test_trip_count_scales_loop_heat(self, loop_cfg):
        low = estimate_edge_profile(loop_cfg, trip_count=3)
        high = estimate_edge_profile(loop_cfg, trip_count=50)
        head = next(b for b in loop_cfg if b.label == "head")
        body = next(b for b in loop_cfg if b.label == "body")
        assert high.count(head.block_id, body.block_id) > low.count(
            head.block_id, body.block_id
        )


class TestProgramEstimate:
    def test_covers_all_procedures(self, mini_module):
        profile = estimate_program_profile(mini_module.program)
        for proc in mini_module.program:
            # Single-block procedures have no edges to estimate.
            if len(proc.cfg) > 1:
                assert profile[proc.name].total() > 0

    def test_usable_for_alignment(self, mini_module, mini_profile):
        """Static-estimated profiles drive the aligner and recover a
        meaningful share of the real-profile benefit when judged under the
        real profile."""
        from repro.core import align_program, evaluate_program
        from repro.machine import ALPHA_21164

        program = mini_module.program
        static = estimate_program_profile(program)
        original = evaluate_program(
            program,
            align_program(program, mini_profile, method="original"),
            mini_profile,
            ALPHA_21164,
        ).total
        static_aligned = evaluate_program(
            program,
            align_program(program, static, method="tsp"),
            mini_profile,
            ALPHA_21164,
        ).total
        real_aligned = evaluate_program(
            program,
            align_program(program, mini_profile, method="tsp"),
            mini_profile,
            ALPHA_21164,
        ).total
        assert real_aligned <= static_aligned <= original
        # At least a third of the profile-guided benefit from zero profiling.
        assert (original - static_aligned) > 0.33 * (original - real_aligned)
