"""Profile loading rejects frequencies no training run could produce.

Negative, NaN, and non-finite edge counts must fail at the loading
boundary with a typed :class:`ProfileValidationError` naming the
offending edge — not poison cost matrices downstream, and not surface
as a bare ``ValueError`` traceback from ``int(float("nan"))``.
"""

import json

import pytest

from repro.errors import (
    ProfileMismatchError,
    ProfileValidationError,
    ReproError,
)
from repro.profiles import EdgeProfile, ProgramProfile


def profile_json(count) -> str:
    # json.dumps refuses nan/inf by default but json.loads accepts the
    # literals — which is exactly how a hand-edited or corrupted profile
    # file smuggles them in.  Build the text directly.
    return (
        '{"call_counts": {}, "call_pairs": [], '
        '"procedures": {"f": [[0, 1, %s]]}}' % count
    )


class TestEdgeProfileAdd:
    def test_negative_count_rejected(self):
        profile = EdgeProfile()
        with pytest.raises(ProfileValidationError, match=r"\(3,7\)"):
            profile.add(3, 7, -1)

    def test_nan_rejected(self):
        with pytest.raises(ProfileValidationError, match="not finite"):
            EdgeProfile().add(0, 1, float("nan"))

    def test_infinity_rejected(self):
        with pytest.raises(ProfileValidationError, match="not finite"):
            EdgeProfile().add(0, 1, float("inf"))

    def test_error_is_valueerror_compatible(self):
        # Historical call sites caught ValueError for negative counts.
        with pytest.raises(ValueError):
            EdgeProfile().add(0, 1, -5)

    def test_error_is_a_typed_repro_error(self):
        with pytest.raises(ReproError):
            EdgeProfile().add(0, 1, -5)
        assert issubclass(ProfileValidationError, ProfileMismatchError)

    def test_valid_counts_still_accumulate(self):
        profile = EdgeProfile()
        profile.add(0, 1, 2)
        profile.add(0, 1, 3.0)  # a float that IS an integer is fine
        assert profile.count(0, 1) == 5


class TestFromJson:
    @pytest.mark.parametrize("bad", ["NaN", "Infinity", "-Infinity"])
    def test_non_finite_literal_named_with_edge(self, bad):
        with pytest.raises(ProfileValidationError) as info:
            ProgramProfile.from_json(profile_json(bad))
        message = str(info.value)
        assert "'f'" in message and "(0,1)" in message

    def test_negative_count_named_with_edge(self):
        with pytest.raises(ProfileValidationError) as info:
            ProgramProfile.from_json(profile_json("-3"))
        assert "'f'" in str(info.value) and "(0,1)" in str(info.value)

    def test_non_numeric_count_rejected(self):
        with pytest.raises(ProfileValidationError):
            ProgramProfile.from_json(profile_json('"lots"'))

    def test_round_trip_still_works(self):
        profile = ProgramProfile()
        profile.profile("f").add(0, 1, 3)
        restored = ProgramProfile.from_json(profile.to_json())
        assert restored["f"].count(0, 1) == 3

    def test_json_loads_accepts_nan_so_validation_must_catch_it(self):
        # Pin the stdlib behaviour this validation exists for: if a
        # future json module rejects the literal itself, the loader's
        # error handling may be simplified.
        payload = json.loads('{"n": NaN}')
        assert payload["n"] != payload["n"]  # NaN
