"""The on-disk artifact store: checksums, crash safety, locks, wiring."""

from __future__ import annotations

import os

import pytest

from repro import faults
from repro.pipeline.artifacts import (
    STORE_ENV,
    ArtifactCache,
    ArtifactStore,
    DEFAULT_STORE_DIR,
    EntryLock,
    default_store,
    reset_default_store,
    resolve_store_path,
    set_default_store,
)


@pytest.fixture(autouse=True)
def _isolated_default_store(monkeypatch):
    monkeypatch.delenv(STORE_ENV, raising=False)
    reset_default_store()
    yield
    reset_default_store()


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


KEY = ArtifactCache.key("align", "some", "fingerprint", 7)


class TestStoreBasics:
    def test_round_trip(self, store):
        assert store.get(KEY) is None
        assert store.put(KEY, {"layout": [3, 1, 2]})
        assert store.get(KEY) == {"layout": [3, 1, 2]}
        assert store.stats.writes == 1
        assert store.stats.hits == 1
        assert store.stats.misses == 1

    def test_layout_shards_by_digest_prefix(self, store):
        path = store.path_for(KEY)
        kind, _, digest = KEY.partition(":")
        assert path.suffix == ".art"
        assert path.parent.name == digest[:2]
        assert path.parent.parent.name == kind
        assert path.parent.parent.parent.name == "v1"

    def test_len_contains_clear(self, store):
        store.put(KEY, 1)
        other = ArtifactCache.key("bound", "x")
        store.put(other, 2)
        assert KEY in store and other in store
        assert len(store) == 2
        store.clear()
        assert len(store) == 0
        assert store.get(KEY) is None


class TestCorruptionSafety:
    def test_bit_rot_is_evicted_not_served(self, store):
        store.put(KEY, [1, 2, 3])
        path = store.path_for(KEY)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.get(KEY) is None
        assert store.stats.evictions == 1
        assert not path.exists()

    def test_kill_mid_write_is_a_miss_never_a_partial_artifact(self, store):
        """A torn write (process killed between publish and data sync,
        simulated by the ``store_corrupt`` fault) must read back as a miss
        and evict — never as a wrong or partial value."""
        with faults.inject_faults(store_corrupt=1) as plan:
            store.put(KEY, {"big": list(range(1000))})
            assert plan.trips("store_corrupt") == 1
            assert store.get(KEY) is None
        assert store.stats.evictions == 1
        assert not store.path_for(KEY).exists()
        # A healthy rewrite fully recovers the entry.
        store.put(KEY, {"big": [1]})
        assert store.get(KEY) == {"big": [1]}

    def test_header_key_mismatch_is_corruption(self, store):
        other = ArtifactCache.key("align", "different")
        store.put(KEY, "value")
        target = store.path_for(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(store.path_for(KEY).read_bytes())
        assert store.get(other) is None
        assert store.stats.evictions == 1

    def test_io_errors_absorbed_on_both_sides(self, store):
        with faults.inject_faults(store_io_error=True):
            assert store.put(KEY, 1) is False
            assert store.get(KEY) is None
        assert store.stats.io_errors == 2
        assert store.get(KEY) is None  # nothing was written

    def test_unwritable_root_never_raises(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        store = ArtifactStore(blocked)
        assert store.put(KEY, 1) is False
        assert store.get(KEY) is None
        assert store.stats.io_errors >= 1


class TestEntryLock:
    def test_acquire_release_cycle(self, tmp_path):
        lock = EntryLock(tmp_path / "e.lock")
        assert lock.acquire()
        assert (tmp_path / "e.lock").exists()
        lock.release()
        assert not (tmp_path / "e.lock").exists()

    def test_contended_lock_times_out_without_error(self, tmp_path):
        path = tmp_path / "e.lock"
        path.write_text("4242")  # a live writer holds it
        lock = EntryLock(path, timeout_ms=40, poll_ms=5, sleep=lambda s: None)
        assert not lock.acquire()
        assert path.exists()  # never stolen from a live owner

    def test_stale_lock_is_stolen(self, tmp_path):
        path = tmp_path / "e.lock"
        path.write_text("4242")
        os.utime(path, (1, 1))  # its writer died long ago
        lock = EntryLock(path, timeout_ms=40, stale_ms=1000)
        assert lock.acquire()
        lock.release()

    def test_future_dated_lock_is_stolen_not_waited_on(self, tmp_path):
        """Regression: staleness used wall-clock mtime age against a
        monotonic deadline, so a lock file dated in the future (clock step,
        NFS skew, a restored backup) had *negative* age and was treated as
        eternally fresh — every writer waited out its full timeout.  Ages
        beyond the small skew tolerance now read as infinitely old."""
        import time

        path = tmp_path / "e.lock"
        path.write_text("4242")
        future = time.time() + 3600.0
        os.utime(path, (future, future))
        lock = EntryLock(path, timeout_ms=40, stale_ms=60_000)
        assert lock.acquire()  # stolen immediately, not timed out
        lock.release()
        assert not path.exists()

    def test_small_clock_skew_is_tolerated_as_fresh(self, tmp_path):
        """Sub-second negative age (ordinary clock jitter) clamps to zero:
        the lock still counts as freshly written, not as stale."""
        import time

        path = tmp_path / "e.lock"
        path.write_text("4242")
        near_future = time.time() + 0.5
        os.utime(path, (near_future, near_future))
        lock = EntryLock(path, timeout_ms=40, poll_ms=5, sleep=lambda s: None)
        assert not lock.acquire()
        assert path.exists()  # never stolen from a live owner

    def test_unreadable_stat_counts_as_stale(self, tmp_path, monkeypatch):
        """A lock whose metadata cannot be read (EACCES, EIO) cannot prove
        it is fresh — it is treated as stale-eligible rather than blocking
        every writer until timeout."""
        from pathlib import Path

        path = tmp_path / "e.lock"
        path.write_text("4242")
        real_stat = Path.stat

        def broken_stat(self, **kwargs):
            if self == path:
                raise PermissionError("metadata unreadable")
            return real_stat(self, **kwargs)

        monkeypatch.setattr(Path, "stat", broken_stat)
        lock = EntryLock(path, timeout_ms=40, stale_ms=60_000)
        assert lock.acquire()
        lock.release()

    def test_contention_skips_the_write(self, store):
        path = store.path_for(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.with_suffix(path.suffix + ".lock").write_text("4242")
        store.lock_timeout_ms = 40
        assert store.put(KEY, 1) is False
        assert store.stats.lock_contention == 1


class TestStoreResolution:
    def test_explicit_path_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "env"))
        assert resolve_store_path(tmp_path / "flag") == tmp_path / "flag"

    def test_environment_fallback_and_disable(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "env"))
        assert resolve_store_path(None) == tmp_path / "env"
        for spec in ("off", "0", "none", "False"):
            assert resolve_store_path(spec) is None
        monkeypatch.delenv(STORE_ENV)
        assert resolve_store_path(None) is None

    def test_auto_names_the_conventional_location(self):
        assert resolve_store_path("auto") == DEFAULT_STORE_DIR
        assert resolve_store_path("default") == DEFAULT_STORE_DIR

    def test_default_store_tracks_environment(self, monkeypatch, tmp_path):
        assert default_store() is None
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "s"))
        resolved = default_store()
        assert resolved is not None
        assert resolved.root == tmp_path / "s"
        monkeypatch.setenv(STORE_ENV, "off")
        assert default_store() is None

    def test_set_default_store_overrides_environment(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "env"))
        pinned = set_default_store(tmp_path / "pinned")
        assert default_store() is pinned
        set_default_store(None)
        assert default_store() is None


class TestCacheStoreTier:
    def test_write_through_and_cross_process_hit(self, store):
        cache = ArtifactCache(store=store)
        cache.put(KEY, "artifact")
        assert KEY in store
        # A fresh cache (≈ a fresh process) against the same store hits.
        fresh = ArtifactCache(store=store)
        assert fresh.get(KEY) == "artifact"
        assert fresh.stats("align").hits == 1

    def test_pipeline_faults_bypass_both_tiers(self, store):
        cache = ArtifactCache(store=store)
        cache.put(KEY, "clean")
        with faults.inject_faults(solver_timeout=True):
            assert not cache.enabled
            assert cache.get(KEY) is None
            cache.put(KEY, "sabotaged")
        assert cache.get(KEY) == "clean"
        assert store.stats.writes == 1  # the armed put never reached disk

    def test_store_only_faults_keep_the_cache_live(self, store):
        """A plan arming only store sites must leave the cache/store path
        enabled — that is the only way injected damage can reach the
        store."""
        cache = ArtifactCache(store=store)
        with faults.inject_faults(store_corrupt=True):
            assert cache.enabled
            cache.put(KEY, "torn")
            fresh = ArtifactCache(store=store)
            assert fresh.get(KEY) is None  # damage landed, and was caught
        assert store.stats.evictions == 1


class TestSerialParallelEquivalence:
    def _tasks(self):
        from repro.experiments.runner import profiled_run
        from repro.machine.models import ALPHA_21164
        from repro.pipeline.task import procedure_tasks
        from repro.tsp.solve import get_effort
        from repro.workloads.suite import compile_benchmark

        program = compile_benchmark("com").program
        profile = profiled_run("com", "in").profile
        return procedure_tasks(
            program, profile, method="tsp", model=ALPHA_21164,
            effort=get_effort("quick"),
        )

    def test_cold_serial_then_warm_parallel_share_one_store(self, store):
        from repro.pipeline.executor import shutdown_pool
        from repro.pipeline.stages import run_align_tasks

        cold = run_align_tasks(
            self._tasks(), jobs=1, cache=ArtifactCache(store=store)
        )
        # A fresh in-memory cache simulates a new process; every non-trivial
        # result must come from the verified store, byte-identical.
        warm = run_align_tasks(
            self._tasks(), jobs=4, cache=ArtifactCache(store=store)
        )
        shutdown_pool()
        for a, b in zip(cold, warm):
            assert a.name == b.name
            assert a.layout.order == b.layout.order
            assert a.cost == b.cost
        solved = [
            b for b, task in zip(warm, self._tasks())
            if task.profile.total() > 0
        ]
        assert solved and all(r.from_cache for r in solved)
