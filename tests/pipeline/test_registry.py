"""The aligner registry: registration, aliases, normalization, live view."""

from __future__ import annotations

import pytest

from repro.core.align import ALIGN_METHODS
from repro.core.layout import original_layout
from repro.errors import UnknownNameError
from repro.pipeline.registry import (
    MethodsView,
    aligner_names,
    get_aligner,
    normalize_method,
    register_aligner,
    unregister_aligner,
)
from repro.pipeline.task import ProcedureResult

BUILTINS = (
    "original", "greedy", "cost-greedy", "cg-exhaustive", "tsp",
    "exttsp", "chain-merge",
)


def test_builtins_are_registered_in_order():
    assert aligner_names() == BUILTINS


def test_align_methods_is_a_live_tuple_like_view():
    assert tuple(ALIGN_METHODS) == BUILTINS
    assert ALIGN_METHODS == BUILTINS
    assert list(ALIGN_METHODS) == list(BUILTINS)
    assert len(ALIGN_METHODS) == len(BUILTINS)
    assert ALIGN_METHODS[0] == "original"
    assert ALIGN_METHODS[-1] == "chain-merge"
    assert "tsp" in ALIGN_METHODS
    assert "nope" not in ALIGN_METHODS
    assert ALIGN_METHODS == MethodsView()


def test_aliases_normalize_to_canonical_names():
    assert normalize_method("tsp") == "tsp"
    assert normalize_method("dtsp") == "tsp"
    assert normalize_method("ph") == "greedy"
    assert normalize_method("pettis-hansen") == "greedy"
    assert normalize_method("cg") == "cost-greedy"
    assert normalize_method("  TSP  ") == "tsp"
    assert "dtsp" in ALIGN_METHODS  # containment accepts aliases too


def test_unknown_method_raises_value_error_with_choices():
    with pytest.raises(ValueError, match="unknown method"):
        normalize_method("simulated-annealing")
    with pytest.raises(UnknownNameError, match="tsp"):
        normalize_method("simulated-annealing")


def test_get_aligner_returns_spec_with_metadata():
    spec = get_aligner("dtsp")
    assert spec.name == "tsp"
    assert spec.uses_instance
    assert callable(spec.fn)


def test_register_and_unregister_round_trip():
    def reversed_aligner(task) -> ProcedureResult:
        layout = original_layout(task.cfg)
        return ProcedureResult(task.name, layout)

    register_aligner(
        "test-reversed", reversed_aligner, aliases=("trev",),
        description="test-only",
    )
    try:
        assert "test-reversed" in ALIGN_METHODS
        assert normalize_method("trev") == "test-reversed"
        assert aligner_names() == (*BUILTINS, "test-reversed")
        # The live view picks the new method up with no re-import.
        assert tuple(ALIGN_METHODS)[-1] == "test-reversed"
    finally:
        unregister_aligner("test-reversed")
    assert "test-reversed" not in ALIGN_METHODS
    assert "trev" not in ALIGN_METHODS


def test_replace_purges_the_replaced_specs_aliases():
    """Re-registering with ``replace=True`` must not leave stale aliases.

    Regression: the old spec's aliases used to survive the replacement,
    so a retired alias kept resolving to the canonical name even after
    the new spec dropped it.
    """
    def first(task) -> ProcedureResult:
        return ProcedureResult(task.name, original_layout(task.cfg))

    def second(task) -> ProcedureResult:
        return ProcedureResult(task.name, original_layout(task.cfg))

    register_aligner("test-replaced", first, aliases=("old-alias",))
    try:
        register_aligner(
            "test-replaced", second, aliases=("new-alias",), replace=True
        )
        assert get_aligner("test-replaced").fn is second
        assert normalize_method("new-alias") == "test-replaced"
        with pytest.raises(UnknownNameError):
            normalize_method("old-alias")
        assert "old-alias" not in ALIGN_METHODS
    finally:
        unregister_aligner("test-replaced")
    assert "new-alias" not in ALIGN_METHODS


def test_duplicate_registration_is_rejected_without_replace():
    with pytest.raises(ValueError, match="already registered"):
        register_aligner("tsp", lambda task: None)


def test_decorator_form_registers():
    @register_aligner("test-decorated")
    def decorated(task) -> ProcedureResult:
        return ProcedureResult(task.name, original_layout(task.cfg))

    try:
        assert get_aligner("test-decorated").fn is decorated
    finally:
        unregister_aligner("test-decorated")


def test_registered_aligner_is_dispatched_by_align_program():
    from repro.core.align import align_program
    from repro.profiles.edge_profile import ProgramProfile
    from repro.workloads.suite import compile_benchmark

    program = compile_benchmark("com").program
    seen = []

    def spy(task) -> ProcedureResult:
        seen.append(task.name)
        return ProcedureResult(task.name, original_layout(task.cfg))

    register_aligner("test-spy", spy)
    try:
        profile = ProgramProfile()
        for proc in program:
            profile.profile(proc.name).add(proc.cfg.entry, proc.cfg.entry, 1)
        layouts = align_program(program, profile, method="test-spy")
        assert sorted(seen) == sorted(p.name for p in program)
        assert {name for name, _ in layouts.items()} == {
            p.name for p in program
        }
    finally:
        unregister_aligner("test-spy")
