"""Worker-count invariance: jobs=1 and jobs=4 produce identical results.

The contract: parallelism is a pure execution detail.  Layouts, alignment
reports, case results, checkpoint payloads, and printed tables must be
identical for every worker count — including under injected faults.
(`align_seconds` is wall-clock and is the one field exempted.)
"""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.core.align import AlignmentReport, align_program
from repro.experiments.checkpoint import ExperimentCheckpoint, case_to_state
from repro.experiments.runner import profiled_run, run_case, run_cases
from repro.machine.models import ALPHA_21164
from repro.pipeline.artifacts import reset_artifact_cache
from repro.pipeline.executor import shutdown_pool
from repro.workloads.suite import compile_benchmark


@pytest.fixture(autouse=True)
def _fresh_artifacts():
    """Each run must genuinely recompute: a warm artifact cache would let
    the jobs=4 run serve the jobs=1 run's results and prove nothing."""
    reset_artifact_cache()
    yield
    reset_artifact_cache()
    shutdown_pool()


def _normalized_state(case) -> dict:
    state = case_to_state(case)
    for payload in state["methods"].values():
        payload["align_seconds"] = 0.0
    return state


def align_both_ways(*, jobs: int, **kwargs):
    program = compile_benchmark("com").program
    profile = profiled_run("com", "in").profile
    report = AlignmentReport()
    layouts = align_program(
        program, profile, report=report, jobs=jobs, **kwargs
    )
    return layouts, report


def test_per_task_seeds_do_not_collide_across_methods():
    """Per-task seeds come from ``derive_seed(seed, method, index)`` — a
    stable hash — not the old ``seed + index`` arithmetic, which handed
    task 0 of every method the same stream (and task N of one method the
    stream of task N+1 of another).  The derivation is a pure function of
    the task identity, so it is worker-count invariant by construction."""
    from repro.pipeline.task import derive_seed

    seeds = {
        (method, index): derive_seed(7, method, index)
        for method in ("tsp", "greedy", "cost-greedy")
        for index in range(16)
    }
    assert len(set(seeds.values())) == len(seeds)  # no collisions
    # Stable across calls (it feeds cache keys and checkpoints).
    assert derive_seed(7, "tsp", 3) == derive_seed(7, "tsp", 3)
    assert derive_seed(7, "tsp", 3) != derive_seed(8, "tsp", 3)


def test_align_program_identical_across_worker_counts():
    serial_layouts, serial_report = align_both_ways(jobs=1, effort="quick")
    reset_artifact_cache()
    parallel_layouts, parallel_report = align_both_ways(
        jobs=4, effort="quick"
    )
    assert {n: l.order for n, l in serial_layouts.items()} == {
        n: l.order for n, l in parallel_layouts.items()
    }
    assert serial_report.cities == parallel_report.cities
    assert serial_report.costs == parallel_report.costs
    assert serial_report.runs_finding_best == parallel_report.runs_finding_best
    assert serial_report.degraded == parallel_report.degraded
    assert serial_report.warnings == parallel_report.warnings


def test_align_program_identical_under_injected_faults():
    """Degradation is deterministic too: with every solve faulted, jobs=1
    and jobs=4 degrade the same procedures to the same rungs with the same
    warnings, and the parent plan sees the workers' trips."""
    with faults.inject_faults(solver_timeout=True) as serial_plan:
        serial_layouts, serial_report = align_both_ways(
            jobs=1, effort="quick"
        )
    with faults.inject_faults(solver_timeout=True) as parallel_plan:
        parallel_layouts, parallel_report = align_both_ways(
            jobs=4, effort="quick"
        )
    assert serial_plan.trips("solver") > 0
    assert parallel_plan.trips("solver") == serial_plan.trips("solver")
    assert serial_report.degraded == parallel_report.degraded
    assert set(serial_report.degraded.values()) == {"construction"}
    assert serial_report.warnings == parallel_report.warnings
    assert {n: l.order for n, l in serial_layouts.items()} == {
        n: l.order for n, l in parallel_layouts.items()
    }


@pytest.mark.parametrize("method", ["exttsp", "chain-merge"])
def test_exttsp_family_identical_across_worker_counts(method):
    """The chain-merge aligners are deterministic pure functions of
    (cfg, profile), so worker count must not leak into their layouts or
    either of their two prices."""
    serial_layouts, serial_report = align_both_ways(
        jobs=1, method=method, effort="quick"
    )
    reset_artifact_cache()
    parallel_layouts, parallel_report = align_both_ways(
        jobs=4, method=method, effort="quick"
    )
    assert {n: l.order for n, l in serial_layouts.items()} == {
        n: l.order for n, l in parallel_layouts.items()
    }
    assert serial_report.exttsp_scores == parallel_report.exttsp_scores
    assert serial_report.exttsp_scores  # dual pricing actually recorded
    assert serial_report.degraded == parallel_report.degraded
    assert serial_report.warnings == parallel_report.warnings


def test_run_case_state_identical_across_worker_counts():
    serial = run_case("com", "in", jobs=1, effort="quick")
    reset_artifact_cache()
    parallel = run_case("com", "in", jobs=4, effort="quick")
    assert _normalized_state(serial) == _normalized_state(parallel)
    assert serial.lower_bound == parallel.lower_bound


def test_checkpoint_payloads_identical_across_worker_counts(tmp_path):
    """A sweep checkpointed at jobs=1 and one at jobs=4 contain the same
    records under the same keys — so a checkpoint written at any worker
    count resumes at any other."""
    specs = [("com", "in")]
    states = {}
    for jobs in (1, 4):
        reset_artifact_cache()
        path = tmp_path / f"sweep-j{jobs}.jsonl"
        checkpoint = ExperimentCheckpoint(path)
        result = run_cases(
            specs, checkpoint=checkpoint, jobs=jobs, effort="quick"
        )
        assert result.computed == 1 and not result.skipped
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        for record in lines:
            for payload in record["case"]["methods"].values():
                payload["align_seconds"] = 0.0
            record.pop("sha", None)  # covers align_seconds, re-derivable
        states[jobs] = lines
    assert states[1] == states[4]


def test_checkpoint_written_serial_resumes_parallel(tmp_path):
    path = tmp_path / "sweep.jsonl"
    specs = [("com", "in")]
    first = run_cases(
        specs, checkpoint=ExperimentCheckpoint(path), jobs=1, effort="quick"
    )
    assert first.computed == 1
    reset_artifact_cache()
    resumed = run_cases(
        specs,
        checkpoint=ExperimentCheckpoint(path, resume=True),
        jobs=4,
        effort="quick",
    )
    assert resumed.from_checkpoint == 1 and resumed.computed == 0
    assert _normalized_state(first.cases[0]) == _normalized_state(
        resumed.cases[0]
    )


def test_suite_cli_output_identical_across_worker_counts(capsys, monkeypatch):
    """The printed suite table — the user-facing artifact — is identical
    for jobs=1 and jobs=4.

    Runs with ambient chaos/store env hidden: the table's `retried` column
    reflects the chaos plan's *counter phase*, which advances across the
    two in-process runs (and the first run would warm a shared store) —
    the product contract is fresh-process determinism, which is what the
    two disarmed runs compare.
    """
    from repro.cli import main
    from repro.faults import CHAOS_ENV
    from repro.pipeline.artifacts import STORE_ENV

    monkeypatch.delenv(CHAOS_ENV, raising=False)
    monkeypatch.delenv(STORE_ENV, raising=False)
    outputs = {}
    for jobs in (1, 4):
        reset_artifact_cache()
        assert main(["suite", "com.in", "--jobs", str(jobs)]) == 0
        outputs[jobs] = capsys.readouterr().out
    assert outputs[1] == outputs[4]


def test_method_aliases_share_one_memo_entry():
    """`run_case_cached` normalizes method spellings through the registry
    before its cache boundary."""
    from repro.experiments.runner import run_case_cached

    run_case_cached.cache_clear()
    a = run_case_cached(
        "com", "in", methods=("original", "dtsp"), effort="quick"
    )
    b = run_case_cached(
        "com", "in", methods=("original", "tsp"), effort="quick"
    )
    assert a is b
    assert set(a.methods) == {"original", "tsp"}
    run_case_cached.cache_clear()


@pytest.mark.parametrize("engine", ["guarded", "turbo"])
def test_align_program_identical_across_worker_counts_kernel_engines(
    monkeypatch, engine
):
    """The kernel engines (including turbo's kick-local wake) are pure
    functions of (instance, effort, seed), so worker count must not leak
    into layouts whichever engine REPRO_TSP_SOLVER selects."""
    monkeypatch.setenv("REPRO_TSP_SOLVER", engine)
    shutdown_pool()  # workers must fork with the engine override in place
    serial_layouts, serial_report = align_both_ways(jobs=1, effort="quick")
    reset_artifact_cache()
    shutdown_pool()
    parallel_layouts, parallel_report = align_both_ways(
        jobs=4, effort="quick"
    )
    assert {n: l.order for n, l in serial_layouts.items()} == {
        n: l.order for n, l in parallel_layouts.items()
    }
    assert serial_report.costs == parallel_report.costs
    assert serial_report.runs_finding_best == parallel_report.runs_finding_best
