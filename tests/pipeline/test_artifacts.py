"""The content-addressed artifact cache: fingerprints, stats, fault bypass."""

from __future__ import annotations

import random

import pytest

from repro import faults
from repro.machine.models import ALPHA_21064, ALPHA_21164
from repro.pipeline.artifacts import (
    STORE_ENV,
    ArtifactCache,
    artifact_cache,
    fingerprint_cfg,
    fingerprint_model,
    fingerprint_profile,
    reset_artifact_cache,
    reset_default_store,
)


@pytest.fixture(autouse=True)
def _isolated_default_store(monkeypatch):
    """This module unit-tests the *in-memory* tier: hide any ambient
    process-default store (e.g. ``$REPRO_STORE`` in the chaos CI job), or
    miss/eviction assertions would be served from disk."""
    monkeypatch.delenv(STORE_ENV, raising=False)
    reset_default_store()
    yield
    reset_default_store()
from repro.pipeline.stages import instance_for
from repro.profiles.edge_profile import EdgeProfile
from repro.workloads import GeneratorConfig, random_procedure


def make_proc(seed: int = 7, blocks: int = 12):
    rng = random.Random(seed)
    return random_procedure("p", rng, GeneratorConfig(target_blocks=blocks))


def make_profile(proc, seed: int = 3) -> EdgeProfile:
    profile = EdgeProfile()
    rng = random.Random(seed)
    for block in proc.cfg:
        for succ in block.successors:
            profile.add(block.block_id, succ, rng.randrange(1, 100))
    return profile


# -- fingerprints -------------------------------------------------------------


def test_cfg_fingerprint_is_stable_and_content_sensitive():
    assert fingerprint_cfg(make_proc().cfg) == fingerprint_cfg(make_proc().cfg)
    assert fingerprint_cfg(make_proc(seed=7).cfg) != fingerprint_cfg(
        make_proc(seed=8).cfg
    )


def test_profile_fingerprint_ignores_zero_counts_and_ordering():
    a, b = EdgeProfile(), EdgeProfile()
    a.add(1, 2, 10)
    a.add(3, 4, 0)       # an explicit zero count changes nothing
    b.add(3, 4, 0)
    b.add(1, 2, 10)      # insertion order changes nothing
    assert fingerprint_profile(a) == fingerprint_profile(b)
    b.add(1, 2, 1)
    assert fingerprint_profile(a) != fingerprint_profile(b)


def test_model_fingerprint_distinguishes_models():
    assert fingerprint_model(ALPHA_21164) != fingerprint_model(ALPHA_21064)


# -- cache mechanics ----------------------------------------------------------


def test_get_put_and_per_kind_stats():
    cache = ArtifactCache()
    key = ArtifactCache.key("instance", "abc", 1)
    assert cache.get(key) is None               # miss
    cache.put(key, "artifact")
    assert cache.get(key) == "artifact"         # hit
    stats = cache.stats("instance")
    assert (stats.hits, stats.misses) == (1, 1)
    assert stats.hit_rate == 0.5
    assert cache.stats().lookups == 2           # aggregate
    assert cache.stats_by_kind().keys() == {"instance"}


def test_key_separates_kinds_and_components():
    assert ArtifactCache.key("align", "x") != ArtifactCache.key("bound", "x")
    assert ArtifactCache.key("align", "x") != ArtifactCache.key("align", "y")
    assert ArtifactCache.key("align", "x", None) != ArtifactCache.key(
        "align", "x", "None"
    )


def test_fifo_eviction_respects_max_entries():
    cache = ArtifactCache(max_entries=2)
    for i in range(3):
        cache.put(ArtifactCache.key("k", i), i)
    assert len(cache) == 2
    assert cache.get(ArtifactCache.key("k", 0)) is None   # oldest evicted
    assert cache.get(ArtifactCache.key("k", 2)) == 2


def test_get_or_build_builds_once():
    cache = ArtifactCache()
    calls = []
    key = ArtifactCache.key("instance", "z")
    for _ in range(3):
        cache.get_or_build(key, lambda: calls.append(1) or "built")
    assert len(calls) == 1
    assert cache.stats("instance").hits == 2


def test_cache_is_bypassed_while_faults_are_armed():
    cache = ArtifactCache()
    key = ArtifactCache.key("align", "f")
    cache.put(key, "clean")
    with faults.inject_faults(solver_timeout=True):
        assert not cache.enabled
        assert cache.get(key) is None       # a cached clean result must not
        cache.put(key, "dirty")             # paper over the injected fault
    assert cache.get(key) == "clean"        # and the armed block writes nothing


def test_instance_for_shares_matrices_across_clients():
    reset_artifact_cache()
    proc = make_proc()
    profile = make_profile(proc)
    first = instance_for(proc.cfg, profile, ALPHA_21164)
    second = instance_for(proc.cfg, profile, ALPHA_21164)
    assert first is second                  # literally one build
    stats = artifact_cache().stats("instance")
    assert stats.hits >= 1
    reset_artifact_cache()
    assert artifact_cache().stats("instance").lookups == 0


# -- bound keying -------------------------------------------------------------


def test_bound_key_ignores_the_upper_bound_hint():
    """A certified floor is valid for (cfg, profile, model) no matter which
    warm-start hint tightened the subgradient schedule, so the hint must
    not split cache entries: an align-then-bound run (hint = tour cost)
    has to hit what a bound-only run (hint = None) wrote, and vice versa.
    Keying on the hint pinned the bound stage's cross-run hit rate at 0."""
    from repro.pipeline.stages import bound_key
    from repro.pipeline.task import BoundTask

    proc = make_proc()
    profile = make_profile(proc)

    def task(**overrides):
        kwargs = dict(
            name="p", cfg=proc.cfg, profile=profile, model=ALPHA_21164
        )
        kwargs.update(overrides)
        return BoundTask(**kwargs)

    base = bound_key(task(upper_bound=None))
    assert bound_key(task(upper_bound=123.5)) == base
    assert bound_key(task(upper_bound=99.0)) == base
    # Everything that *does* change the certified artifact still splits.
    assert bound_key(task(iterations=3)) != base
    assert bound_key(task(model=ALPHA_21064)) != base
    other = make_proc(seed=9)
    assert bound_key(task(cfg=other.cfg)) != base


def test_bound_stage_hits_across_hinted_and_unhinted_runs():
    from repro.pipeline.stages import run_bound_tasks
    from repro.pipeline.task import BoundTask

    reset_artifact_cache()
    proc = make_proc()
    profile = make_profile(proc)
    hinted = BoundTask(
        name="p", cfg=proc.cfg, profile=profile, model=ALPHA_21164,
        upper_bound=500.0,
    )
    unhinted = BoundTask(
        name="p", cfg=proc.cfg, profile=profile, model=ALPHA_21164,
    )
    first = run_bound_tasks([hinted], jobs=1)
    second = run_bound_tasks([unhinted], jobs=1)
    assert second[0].from_cache
    assert second[0].bound == first[0].bound
    assert artifact_cache().stats("bound").hits == 1
    reset_artifact_cache()
