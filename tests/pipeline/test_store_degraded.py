"""Store resource exhaustion: ENOSPC/EIO degrade to sticky read-only mode."""

from __future__ import annotations

import pytest

from repro import faults
from repro.pipeline.artifacts import (
    STORE_ENV,
    ArtifactCache,
    ArtifactStore,
    reset_default_store,
)


@pytest.fixture(autouse=True)
def _isolated_default_store(monkeypatch):
    monkeypatch.delenv(STORE_ENV, raising=False)
    reset_default_store()
    yield
    reset_default_store()


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


KEY = ArtifactCache.key("align", "degraded", 1)
OTHER = ArtifactCache.key("align", "degraded", 2)


class TestEnospcDegradation:
    def test_enospc_flips_sticky_read_only(self, store):
        assert store.put(KEY, {"layout": [0, 1]})
        with faults.inject_faults(store_enospc=1):
            # The OSError a full disk raises never escapes put().
            assert store.put(OTHER, {"layout": [1, 0]}) is False
        assert store.degraded
        assert store.stats.io_errors == 1
        # Sticky: the disk being "full" does not un-fill between calls;
        # later writes are skipped without touching the filesystem.
        assert store.put(OTHER, {"layout": [1, 0]}) is False
        assert store.put(OTHER, {"layout": [1, 0]}) is False
        assert store.stats.degraded_writes == 2
        assert store.stats.io_errors == 1  # no new I/O attempts

    def test_degraded_store_still_serves_reads(self, store):
        store.put(KEY, {"layout": [0, 1]})
        with faults.inject_faults(store_enospc=1):
            store.put(OTHER, {"layout": [1, 0]})
        assert store.degraded
        assert store.get(KEY) == {"layout": [0, 1]}
        assert store.get(OTHER) is None

    def test_transient_store_error_does_not_degrade(self, store):
        # The pre-existing injected store fault raises ArtifactStoreError —
        # transient sabotage, absorbed per-operation, not sticky.
        with faults.inject_faults(store_io_error=1):
            assert store.put(KEY, {"layout": [0, 1]}) is False
        assert not store.degraded
        assert store.put(KEY, {"layout": [0, 1]})

    def test_real_oserror_from_filesystem_degrades(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(KEY, 1)
        # Replace the store root with a file: every later write path
        # mkdir/rename fails with a real OSError, not an injected one.
        import shutil

        shutil.rmtree(store.root)
        store.root.parent.mkdir(parents=True, exist_ok=True)
        store.root.write_text("not a directory")
        assert store.put(OTHER, 2) is False
        assert store.degraded


class TestDegradedAlignment:
    def test_alignment_still_returns_with_a_dead_store(self, tmp_path):
        # End to end: a full disk mid-run must cost only caching, never
        # the answer.
        from repro.core import align_program
        from repro.lang import compile_source, run_and_profile
        from repro.machine.models import ALPHA_21164
        from repro.pipeline.artifacts import set_default_store

        source = """
        fn main() {
          var i = 0;
          var acc = 0;
          while (i < 8) {
            if (i % 2 == 0) { acc = acc + i; }
            i = i + 1;
          }
          output(acc);
          return acc;
        }
        """
        module = compile_source(source)
        _, profile = run_and_profile(module, [])
        store = ArtifactStore(tmp_path / "store")
        set_default_store(store)
        try:
            with faults.inject_faults(store_enospc=1):
                layouts = align_program(
                    module.program, profile, method="tsp",
                    model=ALPHA_21164, seed=0,
                )
        finally:
            reset_default_store()
        assert store.degraded
        for layout in layouts.layouts.values():
            assert sorted(layout.order) == list(range(len(layout.order)))
