"""The parallel executor: jobs resolution, fan-out, fault shipping."""

from __future__ import annotations

import pytest

from repro import faults
from repro.pipeline.executor import (
    JOBS_ENV,
    register_handler,
    resolve_jobs,
    run_tasks,
    shutdown_pool,
)


def test_resolve_jobs_explicit_wins(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "8")
    assert resolve_jobs(2) == 2
    assert resolve_jobs(None) == 8


def test_resolve_jobs_defaults_and_clamps(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(0) == 1
    assert resolve_jobs(-3) == 1
    monkeypatch.setenv(JOBS_ENV, "not-a-number")
    assert resolve_jobs(None) == 1
    monkeypatch.setenv(JOBS_ENV, "  ")
    assert resolve_jobs(None) == 1


def test_serial_path_runs_in_process():
    seen = []
    register_handler("test-serial", lambda x: seen.append(x) or x * 2)
    assert run_tasks("test-serial", [1, 2, 3], jobs=1) == [2, 4, 6]
    assert seen == [1, 2, 3]


def test_single_payload_stays_serial_even_with_jobs():
    # A lone task is not worth a round-trip through the pool.
    marker = object()     # unpicklable closure result proves in-process run
    register_handler("test-single", lambda x: (x, marker))
    [(value, got)] = run_tasks("test-single", [5], jobs=4)
    assert value == 5 and got is marker


def test_unknown_kind_raises():
    with pytest.raises(KeyError):
        run_tasks("test-unregistered-kind", [1], jobs=1)


def test_parallel_matches_serial_on_real_tasks():
    """The pool path must return exactly what the serial path returns, in
    order — exercised on real alignment tasks (module-level handlers, so
    they pickle into workers)."""
    from repro.experiments.runner import profiled_run
    from repro.pipeline.task import procedure_tasks
    from repro.machine.models import ALPHA_21164
    from repro.tsp.solve import get_effort
    from repro.workloads.suite import compile_benchmark

    program = compile_benchmark("com").program
    profile = profiled_run("com", "in").profile
    tasks = procedure_tasks(
        program, profile, method="tsp", model=ALPHA_21164,
        effort=get_effort("quick"),
    )
    serial = run_tasks("align", tasks, jobs=1)
    parallel = run_tasks("align", tasks, jobs=2)
    shutdown_pool()
    assert [r.name for r in serial] == [r.name for r in parallel]
    for a, b in zip(serial, parallel):
        assert a.layout.order == b.layout.order
        assert a.cost == b.cost
        assert a.degraded == b.degraded


def test_fault_plans_ship_to_workers_and_counters_merge():
    """A plan armed in the parent fires inside pool workers, and the
    workers' call/trip counters fold back into the parent plan."""
    from repro.experiments.runner import profiled_run
    from repro.pipeline.task import procedure_tasks
    from repro.machine.models import ALPHA_21164
    from repro.tsp.solve import get_effort
    from repro.workloads.suite import compile_benchmark

    program = compile_benchmark("com").program
    profile = profiled_run("com", "in").profile
    tasks = procedure_tasks(
        program, profile, method="tsp", model=ALPHA_21164,
        effort=get_effort("quick"),
    )
    with faults.inject_faults(solver_timeout=True) as plan:
        results = run_tasks("align", tasks, jobs=2)
    shutdown_pool()
    solvable = [t for t in tasks if t.profile.total() and len(t.cfg) > 2]
    assert plan.trips("solver") >= len(solvable) > 0
    for task, result in zip(tasks, results):
        if task in solvable:
            assert result.degraded != "none"


def test_nested_plans_innermost_ships_to_workers():
    """With nested ``inject_faults`` contexts, the *innermost* plan is the
    one shipped to pool workers; its trip counters merge back into it and
    the outer plan stays untouched."""
    from repro.experiments.runner import profiled_run
    from repro.pipeline.task import procedure_tasks
    from repro.machine.models import ALPHA_21164
    from repro.tsp.solve import get_effort
    from repro.workloads.suite import compile_benchmark

    program = compile_benchmark("com").program
    profile = profiled_run("com", "in").profile
    tasks = procedure_tasks(
        program, profile, method="tsp", model=ALPHA_21164,
        effort=get_effort("quick"),
    )
    with faults.inject_faults(solver_timeout=True) as outer:
        with faults.inject_faults(solver_timeout=True) as inner:
            run_tasks("align", tasks, jobs=2)
    shutdown_pool()
    assert inner.trips("solver") > 0
    assert outer.trips("solver") == 0


def test_caches_bypassed_while_pipeline_faults_armed(tmp_path):
    """While a plan arms a pipeline site, neither the in-memory cache nor
    the on-disk store may serve (or absorb) artifacts — injected failures
    must reach the stage code under test."""
    from repro.pipeline.artifacts import ArtifactCache, ArtifactStore

    store = ArtifactStore(tmp_path / "store")
    cache = ArtifactCache(store=store)
    key = ArtifactCache.key("align", "bypass-probe")
    cache.put(key, "healthy")
    assert key in store
    with faults.inject_faults(worker_crash=True):
        assert cache.get(key) is None
        cache.put(key, "poisoned")
    assert cache.get(key) == "healthy"
    assert store.get(key) == "healthy"
