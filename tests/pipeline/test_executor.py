"""The parallel executor: jobs resolution, fan-out, fault shipping."""

from __future__ import annotations

import pytest

from repro import faults
from repro.pipeline.executor import (
    JOBS_ENV,
    register_handler,
    resolve_jobs,
    run_tasks,
    shutdown_pool,
)


def test_resolve_jobs_explicit_wins(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "8")
    assert resolve_jobs(2) == 2
    assert resolve_jobs(None) == 8


def test_resolve_jobs_defaults_and_clamps(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(0) == 1
    assert resolve_jobs(-3) == 1
    monkeypatch.setenv(JOBS_ENV, "not-a-number")
    assert resolve_jobs(None) == 1
    monkeypatch.setenv(JOBS_ENV, "  ")
    assert resolve_jobs(None) == 1


def test_serial_path_runs_in_process():
    seen = []
    register_handler("test-serial", lambda x: seen.append(x) or x * 2)
    assert run_tasks("test-serial", [1, 2, 3], jobs=1) == [2, 4, 6]
    assert seen == [1, 2, 3]


def test_single_payload_stays_serial_even_with_jobs():
    # A lone task is not worth a round-trip through the pool.
    marker = object()     # unpicklable closure result proves in-process run
    register_handler("test-single", lambda x: (x, marker))
    [(value, got)] = run_tasks("test-single", [5], jobs=4)
    assert value == 5 and got is marker


def test_unknown_kind_raises():
    with pytest.raises(KeyError):
        run_tasks("test-unregistered-kind", [1], jobs=1)


def test_parallel_matches_serial_on_real_tasks():
    """The pool path must return exactly what the serial path returns, in
    order — exercised on real alignment tasks (module-level handlers, so
    they pickle into workers)."""
    from repro.experiments.runner import profiled_run
    from repro.pipeline.task import procedure_tasks
    from repro.machine.models import ALPHA_21164
    from repro.tsp.solve import get_effort
    from repro.workloads.suite import compile_benchmark

    program = compile_benchmark("com").program
    profile = profiled_run("com", "in").profile
    tasks = procedure_tasks(
        program, profile, method="tsp", model=ALPHA_21164,
        effort=get_effort("quick"),
    )
    serial = run_tasks("align", tasks, jobs=1)
    parallel = run_tasks("align", tasks, jobs=2)
    shutdown_pool()
    assert [r.name for r in serial] == [r.name for r in parallel]
    for a, b in zip(serial, parallel):
        assert a.layout.order == b.layout.order
        assert a.cost == b.cost
        assert a.degraded == b.degraded


def test_fault_plans_ship_to_workers_and_counters_merge():
    """A plan armed in the parent fires inside pool workers, and the
    workers' call/trip counters fold back into the parent plan."""
    from repro.experiments.runner import profiled_run
    from repro.pipeline.task import procedure_tasks
    from repro.machine.models import ALPHA_21164
    from repro.tsp.solve import get_effort
    from repro.workloads.suite import compile_benchmark

    program = compile_benchmark("com").program
    profile = profiled_run("com", "in").profile
    tasks = procedure_tasks(
        program, profile, method="tsp", model=ALPHA_21164,
        effort=get_effort("quick"),
    )
    with faults.inject_faults(solver_timeout=True) as plan:
        results = run_tasks("align", tasks, jobs=2)
    shutdown_pool()
    solvable = [t for t in tasks if t.profile.total() and len(t.cfg) > 2]
    assert plan.trips("solver") >= len(solvable) > 0
    for task, result in zip(tasks, results):
        if task in solvable:
            assert result.degraded != "none"


def test_nested_plans_innermost_ships_to_workers():
    """With nested ``inject_faults`` contexts, the *innermost* plan is the
    one shipped to pool workers; its trip counters merge back into it and
    the outer plan stays untouched."""
    from repro.experiments.runner import profiled_run
    from repro.pipeline.task import procedure_tasks
    from repro.machine.models import ALPHA_21164
    from repro.tsp.solve import get_effort
    from repro.workloads.suite import compile_benchmark

    program = compile_benchmark("com").program
    profile = profiled_run("com", "in").profile
    tasks = procedure_tasks(
        program, profile, method="tsp", model=ALPHA_21164,
        effort=get_effort("quick"),
    )
    with faults.inject_faults(solver_timeout=True) as outer:
        with faults.inject_faults(solver_timeout=True) as inner:
            run_tasks("align", tasks, jobs=2)
    shutdown_pool()
    assert inner.trips("solver") > 0
    assert outer.trips("solver") == 0


def test_caches_bypassed_while_pipeline_faults_armed(tmp_path):
    """While a plan arms a pipeline site, neither the in-memory cache nor
    the on-disk store may serve (or absorb) artifacts — injected failures
    must reach the stage code under test."""
    from repro.pipeline.artifacts import ArtifactCache, ArtifactStore

    store = ArtifactStore(tmp_path / "store")
    cache = ArtifactCache(store=store)
    key = ArtifactCache.key("align", "bypass-probe")
    cache.put(key, "healthy")
    assert key in store
    with faults.inject_faults(worker_crash=True):
        assert cache.get(key) is None
        cache.put(key, "poisoned")
    assert cache.get(key) == "healthy"
    assert store.get(key) == "healthy"


def test_chunk_size_is_deterministic_and_capped(monkeypatch):
    from repro.budget import RetryPolicy
    from repro.pipeline import executor
    from repro.pipeline.executor import _CHUNK_WAVES, _MAX_CHUNK, _chunk_size

    free = RetryPolicy()
    assert free.task_timeout_ms is None
    # ~_CHUNK_WAVES dispatch waves per *usable* worker: pin the core count
    # so the assertions hold on any machine.
    monkeypatch.setattr(executor.os, "cpu_count", lambda: 4)
    assert _chunk_size(36, 4, free) == 3
    assert _chunk_size(16, 4, free) == 1
    assert _chunk_size(65, 4, free) == 5
    # Bounded blast radius for one lost worker.
    assert _chunk_size(10_000, 1, free) == _MAX_CHUNK
    # Oversubscription (jobs beyond cores) adds no parallelism, so it must
    # not shrink chunks below the core-limited size.
    monkeypatch.setattr(executor.os, "cpu_count", lambda: 1)
    assert _chunk_size(16, 4, free) == _MAX_CHUNK
    assert _chunk_size(10_000, 4, free) == _MAX_CHUNK
    # Pure function of (count, jobs, cores): same inputs, same chunks.
    assert _chunk_size(100, 2, free) == _chunk_size(100, 2, free)
    assert _CHUNK_WAVES > 1
    # An outer per-task deadline forces singleton chunks (the deadline is
    # enforced per pool task).
    deadline = RetryPolicy(task_timeout_ms=50.0)
    assert _chunk_size(10_000, 4, deadline) == 1


def test_worker_chunk_isolates_payload_failures():
    """Inside one chunk each payload gets its own outcome entry: a raising
    payload ships its exception back without poisoning its chunk-mates."""
    from repro.pipeline.executor import _worker_chunk, register_handler

    def fussy(x):
        if x == 2:
            raise ValueError("payload 2 is cursed")
        return x * 10

    register_handler("test-chunk-fussy", fussy)
    entries = [(x, False) for x in (1, 2, 3)]
    out = _worker_chunk((None, "test-chunk-fussy", entries))
    assert [ok for ok, *_ in out] == [True, False, True]
    assert out[0][1] == 10 and out[2][1] == 30
    assert isinstance(out[1][1], ValueError)
    # Per-payload event capture: each entry carries its own events list.
    assert all(isinstance(entry[4], list) for entry in out)


def test_chunked_pool_matches_serial_on_large_batches():
    """Enough tasks that jobs=2 genuinely groups several payloads per pool
    task: results must still come back in payload order, equal to serial."""
    from repro.budget import RetryPolicy
    from repro.experiments.runner import profiled_run
    from repro.machine.models import ALPHA_21164
    from repro.pipeline.executor import _chunk_size
    from repro.pipeline.task import procedure_tasks
    from repro.tsp.solve import get_effort
    from repro.workloads.suite import compile_benchmark

    program = compile_benchmark("com").program
    profile = profiled_run("com", "in").profile
    tasks = procedure_tasks(
        program, profile, method="tsp", model=ALPHA_21164,
        effort=get_effort("quick"),
    )
    tasks = (tasks * 4)[:20]  # force multi-payload chunks
    assert _chunk_size(len(tasks), 2, RetryPolicy()) > 1
    serial = run_tasks("align", tasks, jobs=1)
    parallel = run_tasks("align", tasks, jobs=2)
    shutdown_pool()
    assert [r.name for r in serial] == [r.name for r in parallel]
    for a, b in zip(serial, parallel):
        assert a.layout.order == b.layout.order
        assert a.cost == b.cost
