"""The supervised executor: retry/backoff, quarantine, crash recovery."""

from __future__ import annotations

import pytest

from repro import faults
from repro.budget import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.errors import PoisonTaskError
from repro.pipeline.executor import (
    RETRIES_ENV,
    TASK_TIMEOUT_ENV,
    register_handler,
    resolve_policy,
    run_tasks,
    run_tasks_supervised,
    shutdown_pool,
)

NO_SLEEP = lambda seconds: None  # noqa: E731 — tests never really back off


def _com_tasks(method="tsp"):
    from repro.experiments.runner import profiled_run
    from repro.machine.models import ALPHA_21164
    from repro.pipeline.task import procedure_tasks
    from repro.tsp.solve import get_effort
    from repro.workloads.suite import compile_benchmark

    program = compile_benchmark("com").program
    profile = profiled_run("com", "in").profile
    return procedure_tasks(
        program, profile, method=method, model=ALPHA_21164,
        effort=get_effort("quick"),
    )


class TestRetryPolicy:
    def test_backoff_is_capped_exponential_and_deterministic(self):
        policy = RetryPolicy(retries=5, backoff_base_ms=25, backoff_cap_ms=100)
        assert [policy.backoff_ms(n) for n in range(5)] == [
            0.0, 25.0, 50.0, 100.0, 100.0,
        ]

    def test_max_attempts(self):
        assert RetryPolicy(retries=0).max_attempts == 1
        assert DEFAULT_RETRY_POLICY.max_attempts == 3

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout_ms=0)


class TestResolvePolicy:
    def test_environment_seeds_the_default(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "5")
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "250")
        policy = resolve_policy()
        assert policy.retries == 5
        assert policy.task_timeout_ms == 250.0

    def test_garbage_environment_is_ignored(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "many")
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "-3")
        policy = resolve_policy()
        assert policy.retries == DEFAULT_RETRY_POLICY.retries
        assert policy.task_timeout_ms is None

    def test_explicit_overrides_win(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "5")
        assert resolve_policy(retries=1).retries == 1
        pinned = RetryPolicy(retries=7)
        assert resolve_policy(pinned) is pinned


class TestSerialSupervision:
    def test_flaky_task_retries_to_success(self):
        failures = {"left": 2}

        def flaky(n):
            if failures["left"]:
                failures["left"] -= 1
                raise RuntimeError("transient")
            return n * 10

        register_handler("t-flaky", flaky)
        report = run_tasks_supervised(
            "t-flaky", [7], jobs=1, policy=RetryPolicy(retries=3),
            sleep=NO_SLEEP,
        )
        [outcome] = report.outcomes
        assert outcome.ok and outcome.result == 70
        assert outcome.attempts == 3 and outcome.retried == 2
        assert not outcome.quarantined

    def test_poison_task_quarantines_and_batch_survives(self):
        register_handler(
            "t-poison",
            lambda n: (_ for _ in ()).throw(ValueError("always bad"))
            if n == 2 else n,
        )
        report = run_tasks_supervised(
            "t-poison", [1, 2, 3], jobs=1, policy=RetryPolicy(retries=1),
            sleep=NO_SLEEP,
        )
        assert [o.ok for o in report.outcomes] == [True, False, True]
        poisoned = report.outcomes[1]
        assert poisoned.quarantined
        assert poisoned.attempts == 2
        assert poisoned.error_type == "ValueError"
        assert "always bad" in poisoned.error
        assert [o.result for o in report.outcomes if o.ok] == [1, 3]

    def test_backoff_schedule_observed_through_injected_sleep(self):
        delays = []
        register_handler(
            "t-always-bad",
            lambda n: (_ for _ in ()).throw(RuntimeError("no")),
        )
        run_tasks_supervised(
            "t-always-bad", [0], jobs=1,
            policy=RetryPolicy(retries=3, backoff_base_ms=10,
                               backoff_cap_ms=20),
            sleep=delays.append,
        )
        assert delays == [0.010, 0.020, 0.020]

    def test_zero_retries_fails_fast(self):
        register_handler(
            "t-fragile", lambda n: (_ for _ in ()).throw(OSError("io")),
        )
        report = run_tasks_supervised(
            "t-fragile", [0], jobs=1, policy=RetryPolicy(retries=0),
            sleep=NO_SLEEP,
        )
        assert report.outcomes[0].attempts == 1
        assert report.outcomes[0].quarantined

    def test_strict_facade_raises_poison_task_error(self):
        register_handler(
            "t-strict", lambda n: (_ for _ in ()).throw(RuntimeError("bad")),
        )
        with pytest.raises(PoisonTaskError) as info:
            run_tasks("t-strict", [0], jobs=1, policy=RetryPolicy(retries=1))
        assert info.value.attempts == 2

    def test_quarantine_report_is_structured(self):
        register_handler(
            "t-report",
            lambda n: (_ for _ in ()).throw(ValueError("boom"))
            if n else n,
        )
        report = run_tasks_supervised(
            "t-report", [0, 1], jobs=1, policy=RetryPolicy(retries=0),
            sleep=NO_SLEEP,
        )
        [entry] = report.quarantine_report(labels=["good", "bad"])
        assert entry["task"] == "bad"
        assert entry["error_type"] == "ValueError"
        assert entry["attempts"] == 1


class TestInjectedDispatchFaults:
    def test_worker_crash_is_retried_transparently(self):
        register_handler("t-crashy", lambda n: n + 1)
        with faults.inject_faults(worker_crash=2) as plan:
            report = run_tasks_supervised(
                "t-crashy", [10, 20, 30], jobs=1, sleep=NO_SLEEP,
            )
        assert [o.result for o in report.outcomes] == [11, 21, 31]
        assert plan.trips("worker_crash") == 1
        assert report.worker_crashes == 1
        assert report.retried == 1

    def test_periodic_crashes_still_converge(self):
        register_handler("t-periodic", lambda n: n)
        with faults.inject_faults(worker_crash="%3") as plan:
            report = run_tasks_supervised(
                "t-periodic", list(range(6)), jobs=1, sleep=NO_SLEEP,
            )
        assert all(o.ok for o in report.outcomes)
        assert plan.trips("worker_crash") >= 2

    def test_simulated_timeout_counts_and_retries(self):
        register_handler("t-slow", lambda n: n)
        with faults.inject_faults(task_timeout=1):
            report = run_tasks_supervised(
                "t-slow", [1, 2], jobs=1, sleep=NO_SLEEP,
            )
        assert all(o.ok for o in report.outcomes)
        assert report.timeouts == 1
        assert report.outcomes[0].error_type == "TaskTimeoutError"

    def test_unrelenting_timeouts_quarantine(self):
        register_handler("t-stuck", lambda n: n)
        with faults.inject_faults(task_timeout=True):
            report = run_tasks_supervised(
                "t-stuck", [1], jobs=1, policy=RetryPolicy(retries=1),
                sleep=NO_SLEEP,
            )
        assert report.outcomes[0].quarantined
        assert report.outcomes[0].timeouts == 2


class TestParallelSupervision:
    def test_real_worker_crash_recovers_with_identical_results(self):
        """`worker_crash` in pool mode is a genuine ``os._exit`` in the
        worker — the pool breaks, is rebuilt, and the batch completes with
        the same results as a clean serial run."""
        tasks = _com_tasks()
        clean = run_tasks("align", tasks, jobs=1)
        with faults.inject_faults(worker_crash=1) as plan:
            report = run_tasks_supervised(
                "align", tasks, jobs=2, sleep=NO_SLEEP,
            )
        shutdown_pool()
        assert plan.trips("worker_crash") == 1
        assert report.worker_crashes >= 1
        assert all(o.ok for o in report.outcomes)
        for expect, outcome in zip(clean, report.outcomes):
            assert outcome.result.name == expect.name
            assert outcome.result.layout.order == expect.layout.order
            assert outcome.result.cost == expect.cost

    def test_parallel_timeout_abandons_and_quarantines(self):
        """An attempt that blows its deadline is charged one attempt, and
        exhausting the retry budget quarantines every sabotaged task."""
        tasks = _com_tasks()
        with faults.inject_faults(task_timeout=True):
            report = run_tasks_supervised(
                "align", tasks, jobs=2, policy=RetryPolicy(retries=1),
                sleep=NO_SLEEP,
            )
        shutdown_pool()
        assert all(o.quarantined for o in report.outcomes)
        assert all(o.attempts == 2 for o in report.outcomes)


class TestChaosMode:
    def test_chaos_crashes_are_invisible_in_results(self, monkeypatch):
        tasks = _com_tasks()
        clean = run_tasks("align", tasks, jobs=1)
        monkeypatch.setenv(faults.CHAOS_ENV, "worker_crash=%3")
        report = run_tasks_supervised("align", tasks, jobs=1, sleep=NO_SLEEP)
        monkeypatch.setenv(faults.CHAOS_ENV, "")
        assert all(o.ok for o in report.outcomes)
        assert report.worker_crashes >= 1
        for expect, outcome in zip(clean, report.outcomes):
            assert outcome.result.layout.order == expect.layout.order
            assert outcome.result.cost == expect.cost
