"""Tests for hot/cold block splitting."""

import pytest

from repro.core import align_program, evaluate_layout, original_layout
from repro.core.hot_cold import cold_fraction, split_hot_cold, split_program_hot_cold
from repro.machine import ALPHA_21164
from repro.profiles import EdgeProfile


@pytest.fixture
def cold_heavy_cfg():
    from repro.cfg import CFGBuilder
    b = CFGBuilder()
    b.block("entry", padding=1).cond("hot", "cold1")
    b.block("hot", padding=2).cond("entry", "exit")
    b.block("cold1", padding=9).jump("cold2")
    b.block("cold2", padding=9).jump("exit")
    b.block("exit", padding=1).ret()
    return b, b.build(entry="entry")


@pytest.fixture
def hot_profile(cold_heavy_cfg):
    b, cfg = cold_heavy_cfg
    ids = {name: b.id_of(name) for name in ("entry", "hot", "cold1", "cold2", "exit")}
    return ids, EdgeProfile({
        (ids["entry"], ids["hot"]): 1000,
        (ids["hot"], ids["entry"]): 999,
        (ids["hot"], ids["exit"]): 1,
    })


class TestSplitHotCold:
    def test_cold_blocks_moved_last(self, cold_heavy_cfg, hot_profile):
        b, cfg = cold_heavy_cfg
        ids, profile = hot_profile
        layout = split_hot_cold(cfg, original_layout(cfg), profile)
        positions = layout.positions
        for cold in ("cold1", "cold2"):
            for hot in ("entry", "hot", "exit"):
                assert positions[ids[cold]] > positions[ids[hot]]

    def test_relative_order_preserved(self, cold_heavy_cfg, hot_profile):
        b, cfg = cold_heavy_cfg
        ids, profile = hot_profile
        layout = split_hot_cold(cfg, original_layout(cfg), profile)
        assert layout.positions[ids["cold1"]] < layout.positions[ids["cold2"]]

    def test_entry_stays_first_even_if_cold(self, cold_heavy_cfg):
        b, cfg = cold_heavy_cfg
        layout = split_hot_cold(cfg, original_layout(cfg), EdgeProfile())
        assert layout.order[0] == cfg.entry

    def test_penalty_not_worsened_here(self, cold_heavy_cfg, hot_profile):
        """Pulling cold interlopers out of the hot path can only help this
        layout (hot blocks become adjacent, enabling fall-throughs)."""
        b, cfg = cold_heavy_cfg
        ids, profile = hot_profile
        base = original_layout(cfg)
        split = split_hot_cold(cfg, base, profile)
        before = evaluate_layout(cfg, base, profile, ALPHA_21164).total
        after = evaluate_layout(cfg, split, profile, ALPHA_21164).total
        assert after <= before

    def test_penalty_preserved_on_tsp_layouts(self, mini_module, mini_profile):
        """On an aligned layout the hot region is already contiguous, so
        splitting is penalty-neutral (cold blocks contribute nothing)."""
        from repro.core import evaluate_program
        program = mini_module.program
        layouts = align_program(program, mini_profile, method="tsp")
        split = split_program_hot_cold(program, layouts, mini_profile)
        before = evaluate_program(program, layouts, mini_profile, ALPHA_21164)
        after = evaluate_program(program, split, mini_profile, ALPHA_21164)
        assert after.total <= before.total + 1e-6

    def test_cold_fraction(self, cold_heavy_cfg, hot_profile):
        b, cfg = cold_heavy_cfg
        ids, profile = hot_profile
        fraction = cold_fraction(cfg, profile)
        assert 0.4 < fraction < 0.9
        assert cold_fraction(cfg, profile, threshold=10_000) > fraction


class TestProgramLevel:
    def test_split_program(self, mini_module, mini_profile):
        program = mini_module.program
        layouts = align_program(program, mini_profile, method="tsp")
        split = split_program_hot_cold(program, layouts, mini_profile)
        split.check_against(program)

    def test_split_improves_or_keeps_cache_density(self, mini_module, mini_run):
        from repro.core import train_predictors
        from repro.machine import DirectMappedICache
        from repro.machine.timing import simulate_timing

        result, profile = mini_run
        program = mini_module.program
        layouts = align_program(program, profile, method="tsp")
        predictors = train_predictors(program, profile)

        def misses(candidate):
            timing = simulate_timing(
                program, candidate, profile, result.trace.trace, ALPHA_21164,
                predictors=predictors, icache=DirectMappedICache(512, 32),
            )
            return timing.icache_misses

        split = split_program_hot_cold(program, layouts, profile)
        assert misses(split) <= misses(layouts) * 1.05
