"""Tests for layout representation."""

import pytest

from repro.core import (
    Layout,
    LayoutError,
    ProgramLayout,
    original_layout,
    original_program_layout,
)
from repro.core.layout import layout_from_order


class TestLayout:
    def test_rejects_duplicates(self):
        with pytest.raises(LayoutError):
            Layout((0, 1, 1))

    def test_positions_and_successors(self):
        layout = Layout((2, 0, 1))
        assert layout.positions == {2: 0, 0: 1, 1: 2}
        assert layout.successor_map() == {2: 0, 0: 1, 1: None}

    def test_check_against_requires_permutation(self, diamond_cfg):
        with pytest.raises(LayoutError, match="permutation"):
            Layout((0, 1)).check_against(diamond_cfg)

    def test_check_against_requires_entry_first(self, diamond_cfg):
        blocks = diamond_cfg.block_ids
        wrong = Layout(tuple(reversed(blocks)))
        with pytest.raises(LayoutError, match="entry"):
            wrong.check_against(diamond_cfg)
        wrong.check_against(diamond_cfg, anchor_entry=False)

    def test_original_layout_entry_first(self, loop_cfg):
        layout = original_layout(loop_cfg)
        assert layout.order[0] == loop_cfg.entry
        assert set(layout) == set(loop_cfg.block_ids)

    def test_layout_from_order(self):
        assert layout_from_order([3, 1, 2]).order == (3, 1, 2)


class TestProgramLayout:
    def test_check_against_program(self, loop_program):
        layouts = original_program_layout(loop_program)
        layouts.check_against(loop_program)

    def test_missing_procedure_detected(self, loop_program):
        with pytest.raises(LayoutError, match="no layout"):
            ProgramLayout().check_against(loop_program)

    def test_mapping_interface(self, loop_cfg):
        layouts = ProgramLayout()
        layouts["main"] = original_layout(loop_cfg)
        assert "main" in layouts
        assert list(dict(layouts.items())) == ["main"]
