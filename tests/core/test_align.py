"""Tests for the top-level align/lower-bound API and the TSP aligner."""

import pytest

from repro.core import (
    align_program,
    evaluate_program,
    lower_bound_program,
    tsp_align,
)
from repro.core.align import ALIGN_METHODS, AlignmentReport
from repro.core.aligners.tsp_aligner import alignment_lower_bound
from repro.machine import ALPHA_21164, UNIT_COST
from repro.profiles import EdgeProfile


class TestTspAlign:
    def test_layout_valid_and_cost_consistent(self, loop_cfg, loop_profile):
        alignment = tsp_align(loop_cfg, loop_profile["main"], ALPHA_21164)
        alignment.layout.check_against(loop_cfg)
        assert alignment.cost == pytest.approx(
            alignment.instance.layout_cost(alignment.layout)
        )

    def test_empty_profile_returns_original(self, loop_cfg):
        alignment = tsp_align(loop_cfg, EdgeProfile(), ALPHA_21164)
        assert alignment.cost == 0

    def test_bound_below_alignment(self, loop_cfg, loop_profile):
        alignment = tsp_align(loop_cfg, loop_profile["main"], ALPHA_21164)
        bound = alignment_lower_bound(
            loop_cfg, loop_profile["main"], ALPHA_21164,
            instance=alignment.instance, upper_bound=alignment.cost,
        )
        assert bound <= alignment.cost + 1e-6

    def test_hk_only_bound_still_valid(self, loop_cfg, loop_profile):
        alignment = tsp_align(loop_cfg, loop_profile["main"], ALPHA_21164)
        bound = alignment_lower_bound(
            loop_cfg, loop_profile["main"], ALPHA_21164,
            instance=alignment.instance, upper_bound=alignment.cost,
            exact_nodes=0,
        )
        assert bound <= alignment.cost + 1e-6


class TestAlignProgram:
    def test_unknown_method_rejected(self, mini_module, mini_profile):
        with pytest.raises(ValueError, match="unknown method"):
            align_program(mini_module.program, mini_profile, method="magic")

    @pytest.mark.parametrize("method", ALIGN_METHODS)
    def test_all_methods_produce_valid_layouts(
        self, mini_module, mini_profile, method
    ):
        layouts = align_program(mini_module.program, mini_profile, method=method)
        layouts.check_against(mini_module.program)

    def test_method_ordering(self, mini_module, mini_profile):
        """tsp <= greedy <= original, and the bound is below tsp."""
        program = mini_module.program
        penalties = {}
        for method in ("original", "greedy", "tsp"):
            layouts = align_program(program, mini_profile, method=method)
            penalties[method] = evaluate_program(
                program, layouts, mini_profile, ALPHA_21164
            ).total
        bound = lower_bound_program(program, mini_profile).total
        assert penalties["tsp"] <= penalties["greedy"] + 1e-6
        assert penalties["greedy"] <= penalties["original"] + 1e-6
        assert bound <= penalties["tsp"] + 1e-6

    def test_report_populated(self, mini_module, mini_profile):
        report = AlignmentReport()
        align_program(
            mini_module.program, mini_profile, method="tsp", report=report
        )
        executed = [
            name for name, profile in mini_profile.procedures.items()
            if profile.total() > 0
        ]
        for name in executed:
            assert report.cities[name] >= 2

    def test_unit_cost_model_accepted(self, mini_module, mini_profile):
        layouts = align_program(
            mini_module.program, mini_profile, method="tsp", model=UNIT_COST
        )
        layouts.check_against(mini_module.program)

    def test_deterministic_for_seed(self, mini_module, mini_profile):
        a = align_program(mini_module.program, mini_profile, method="tsp", seed=3)
        b = align_program(mini_module.program, mini_profile, method="tsp", seed=3)
        assert {k: v.order for k, v in a.items()} == {
            k: v.order for k, v in b.items()
        }
