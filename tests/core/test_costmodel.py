"""Tests for the §2.2 terminator cost model against Table 3 by hand."""

import pytest

from repro.cfg import TerminatorKind, make_block
from repro.core import CostBreakdown, effective_kind, terminator_cost
from repro.machine import ALPHA_21164


def cost(block, counts, predicted, layout_successor):
    return terminator_cost(block, counts, predicted, layout_successor, ALPHA_21164)


class TestUnconditional:
    def test_fallthrough_is_free(self):
        block = make_block(0, TerminatorKind.UNCONDITIONAL, (1,))
        assert cost(block, {1: 100}, 1, 1).total == 0

    def test_kept_jump_costs_two_per_execution(self):
        block = make_block(0, TerminatorKind.UNCONDITIONAL, (1,))
        result = cost(block, {1: 100}, 1, 7)
        assert result.total == 200
        assert result.jump == 200

    def test_last_block_needs_jump(self):
        block = make_block(0, TerminatorKind.UNCONDITIONAL, (1,))
        assert cost(block, {1: 50}, 1, None).total == 100


class TestConditional:
    def block(self):
        return make_block(0, TerminatorKind.CONDITIONAL, (1, 2))

    def test_predicted_arm_as_fallthrough(self):
        # Predicted 1 (90), other 2 (10); layout successor 1.
        result = cost(self.block(), {1: 90, 2: 10}, 1, 1)
        # 90 * p_nn(0) + 10 * mispredict(5)
        assert result.total == 50
        assert result.mispredict == 50

    def test_unpredicted_arm_as_fallthrough(self):
        result = cost(self.block(), {1: 90, 2: 10}, 1, 2)
        # 90 taken correctly predicted (misfetch 1) + 10 mispredicted (5)
        assert result.total == 90 * 1 + 10 * 5
        assert result.redirect == 90

    def test_neither_arm_needs_fixup(self):
        result = cost(self.block(), {1: 90, 2: 10}, 1, 99)
        # 90 * p_tt(1) + 10 * (mispredict 5 + fixup jump 2)
        assert result.total == 90 + 10 * 5 + 10 * 2
        assert result.jump == 20

    def test_end_of_layout_same_as_fixup(self):
        with_fixup = cost(self.block(), {1: 90, 2: 10}, 1, 99)
        at_end = cost(self.block(), {1: 90, 2: 10}, 1, None)
        assert with_fixup.total == at_end.total

    def test_stale_prediction_outside_successors_falls_back(self):
        result = cost(self.block(), {1: 90, 2: 10}, 42, 1)
        # Prediction falls back to the first successor (1).
        assert result.total == 50

    def test_never_executed_is_free(self):
        assert cost(self.block(), {}, 1, 7).total == 0


class TestMultiway:
    def block(self):
        return make_block(0, TerminatorKind.MULTIWAY, (1, 2, 3, 1))

    def test_correct_predicted_layout_successor_free(self):
        result = cost(self.block(), {1: 80, 2: 15, 3: 5}, 1, 1)
        # 80 free; 15+5 mispredicted register transfers at 3 cycles.
        assert result.total == 60

    def test_correct_prediction_elsewhere_pays_redirect(self):
        result = cost(self.block(), {1: 80, 2: 15, 3: 5}, 1, 99)
        assert result.total == 80 * 3 + 20 * 3

    def test_no_fixup_ever(self):
        result = cost(self.block(), {1: 80, 2: 20}, 1, 99)
        assert result.jump == 0


class TestDegenerate:
    def test_conditional_with_equal_arms_behaves_unconditional(self):
        block = make_block(0, TerminatorKind.CONDITIONAL, (1, 1))
        assert effective_kind(block) is TerminatorKind.UNCONDITIONAL
        assert cost(block, {1: 10}, 1, 1).total == 0
        assert cost(block, {1: 10}, 1, 5).total == 20

    def test_single_target_multiway_behaves_unconditional(self):
        block = make_block(0, TerminatorKind.MULTIWAY, (1, 1, 1))
        assert effective_kind(block) is TerminatorKind.UNCONDITIONAL

    def test_return_is_free(self):
        block = make_block(0, TerminatorKind.RETURN)
        assert cost(block, {}, None, None).total == 0


class TestCostBreakdown:
    def test_addition(self):
        total = CostBreakdown(1, 2, 3) + CostBreakdown(10, 20, 30)
        assert (total.redirect, total.mispredict, total.jump) == (11, 22, 33)
        assert total.total == 66
