"""Tests for the greedy aligners and the chain machinery."""

import pytest

from repro.core import (
    calder_grunwald_layout,
    evaluate_layout,
    original_layout,
    pettis_hansen_layout,
)
from repro.core.aligners.chains import ChainSet
from repro.machine import ALPHA_21164
from repro.profiles import EdgeProfile


class TestChainSet:
    def test_link_merges_head_to_tail(self):
        chains = ChainSet([0, 1, 2, 3])
        assert chains.try_link(0, 1)
        assert chains.try_link(1, 2)
        assert chains.chain(chains.chain_id(0)) == [0, 1, 2]

    def test_link_rejects_mid_chain_endpoints(self):
        chains = ChainSet([0, 1, 2, 3])
        chains.try_link(0, 1)
        chains.try_link(1, 2)
        assert not chains.try_link(1, 3)   # 1 is not a tail
        assert not chains.try_link(3, 1)   # 1 is not a head

    def test_link_rejects_cycles(self):
        chains = ChainSet([0, 1])
        chains.try_link(0, 1)
        assert not chains.try_link(1, 0)

    def test_is_head_is_tail(self):
        chains = ChainSet([0, 1])
        chains.try_link(0, 1)
        assert chains.is_head(0) and chains.is_tail(1)
        assert not chains.is_head(1) and not chains.is_tail(0)


class TestPettisHansen:
    def test_hot_edge_becomes_fallthrough(self, diamond_cfg):
        b = {blk.label: blk.block_id for blk in diamond_cfg}
        profile = EdgeProfile({
            (b["entry"], b["right"]): 90,
            (b["entry"], b["left"]): 10,
            (b["right"], b["exit"]): 90,
            (b["left"], b["exit"]): 10,
        })
        layout = pettis_hansen_layout(diamond_cfg, profile)
        position = layout.positions
        # Hot path entry -> right -> exit is laid out contiguously.
        assert position[b["right"]] == position[b["entry"]] + 1
        assert position[b["exit"]] == position[b["right"]] + 1

    def test_layout_is_valid_permutation(self, loop_cfg, loop_profile):
        layout = pettis_hansen_layout(loop_cfg, loop_profile["main"])
        layout.check_against(loop_cfg)

    def test_improves_over_original(self, loop_cfg, loop_profile):
        profile = loop_profile["main"]
        greedy = evaluate_layout(
            loop_cfg,
            pettis_hansen_layout(loop_cfg, profile),
            profile,
            ALPHA_21164,
        ).total
        baseline = evaluate_layout(
            loop_cfg, original_layout(loop_cfg), profile, ALPHA_21164
        ).total
        assert greedy <= baseline

    def test_empty_profile_degrades_gracefully(self, loop_cfg):
        layout = pettis_hansen_layout(loop_cfg, EdgeProfile())
        layout.check_against(loop_cfg)


class TestCalderGrunwald:
    def test_layout_valid(self, loop_cfg, loop_profile):
        layout = calder_grunwald_layout(
            loop_cfg, loop_profile["main"], ALPHA_21164
        )
        layout.check_against(loop_cfg)

    def test_cost_weighting_beats_frequency_when_costs_disagree(self):
        """A case where frequency greedy picks the wrong fall-through.

        Block A is conditional (arms B hot / C cold); block J is
        unconditional into B with frequency between the two arms.  The
        frequency order links (A,B) first, so J pays a kept jump (2/exec).
        Cost weighting knows (J,B) saves 2 cycles/exec while (A,B) as a
        fall-through saves only 1/exec over branching to B.
        """
        from repro.cfg import CFGBuilder
        b = CFGBuilder()
        b.block("A", padding=1).cond("B", "C")
        b.block("J", padding=1).jump("B")
        b.block("B", padding=1).ret()
        b.block("C", padding=1).jump("J")
        cfg = b.build(entry="A")
        ids = {name: b.id_of(name) for name in "ABCJ"}
        profile = EdgeProfile({
            (ids["A"], ids["B"]): 100,
            (ids["A"], ids["C"]): 60,
            (ids["C"], ids["J"]): 60,
            (ids["J"], ids["B"]): 60 + 30,  # J also entered externally? no:
        })
        # Keep flow consistent: J->B executes 60 times.
        profile.counts[(ids["J"], ids["B"])] = 60
        freq = pettis_hansen_layout(cfg, profile)
        cost = calder_grunwald_layout(cfg, profile, ALPHA_21164)
        freq_penalty = evaluate_layout(cfg, freq, profile, ALPHA_21164).total
        cost_penalty = evaluate_layout(cfg, cost, profile, ALPHA_21164).total
        assert cost_penalty <= freq_penalty
