"""The Ext-TSP objective and the chain-merging aligners built on it."""

import pytest

from repro.core import (
    DEFAULT_PARAMS,
    ExtTSPParams,
    chain_merge_layout,
    evaluate_layout,
    exttsp_layout,
    exttsp_max_score,
    exttsp_program_score,
    exttsp_score,
    original_layout,
)
from repro.core.aligners import MergeStats
from repro.core.exttsp import block_addresses, block_size_words, edge_weight
from repro.core.layout import Layout
from repro.machine import ALPHA_21164
from repro.profiles import EdgeProfile


class TestEdgeWeight:
    def test_fallthrough_scores_full_weight(self):
        assert edge_weight(100, 100) == DEFAULT_PARAMS.fallthrough_weight

    def test_forward_window_is_inclusive(self):
        w = DEFAULT_PARAMS.forward_window
        assert edge_weight(0, w) == DEFAULT_PARAMS.forward_weight
        assert edge_weight(0, w + 1) == 0.0

    def test_backward_window_is_inclusive_and_tighter(self):
        w = DEFAULT_PARAMS.backward_window
        assert w < DEFAULT_PARAMS.forward_window
        assert edge_weight(w, 0) == DEFAULT_PARAMS.backward_weight
        assert edge_weight(w + 1, 0) == 0.0

    def test_custom_params(self):
        params = ExtTSPParams(
            fallthrough_weight=2.0, forward_weight=0.5,
            backward_weight=0.25, forward_window=10, backward_window=4,
        )
        assert edge_weight(7, 7, params) == 2.0
        assert edge_weight(0, 10, params) == 0.5
        assert edge_weight(0, 11, params) == 0.0
        assert edge_weight(4, 0, params) == 0.25
        assert edge_weight(5, 0, params) == 0.0

    def test_fingerprint_covers_every_knob(self):
        fingerprints = {
            DEFAULT_PARAMS.fingerprint(),
            ExtTSPParams(fallthrough_weight=2.0).fingerprint(),
            ExtTSPParams(forward_weight=0.2).fingerprint(),
            ExtTSPParams(backward_weight=0.2).fingerprint(),
            ExtTSPParams(forward_window=512).fingerprint(),
            ExtTSPParams(backward_window=128).fingerprint(),
        }
        assert len(fingerprints) == 6


class TestBlockAddresses:
    def test_consecutive_from_zero(self, diamond_cfg):
        order = original_layout(diamond_cfg).order
        addresses = block_addresses(diamond_cfg, order)
        at = 0
        for block_id in order:
            start, end = addresses[block_id]
            assert start == at
            assert end - start == block_size_words(diamond_cfg.block(block_id))
            at = end


def diamond_ids_and_profile(cfg):
    ids = {blk.label: blk.block_id for blk in cfg}
    profile = EdgeProfile({
        (ids["entry"], ids["right"]): 90,
        (ids["entry"], ids["left"]): 10,
        (ids["right"], ids["exit"]): 90,
        (ids["left"], ids["exit"]): 10,
    })
    return ids, profile


class TestExtTSPScore:
    def test_hand_computed_diamond(self, diamond_cfg):
        """entry·right·exit·left: the hot path falls through (full weight),
        the cold arm pays short-jump weight both ways.  The whole procedure
        is a handful of words, so every non-fall-through stays in window."""
        ids, profile = diamond_ids_and_profile(diamond_cfg)
        layout = Layout(order=(
            ids["entry"], ids["right"], ids["exit"], ids["left"],
        ))
        expected = 90 * 1.0 + 90 * 1.0 + 10 * 0.1 + 10 * 0.1
        assert exttsp_score(diamond_cfg, layout, profile) == pytest.approx(
            expected
        )

    def test_max_score_is_total_counts(self, diamond_cfg):
        _ids, profile = diamond_ids_and_profile(diamond_cfg)
        assert exttsp_max_score(diamond_cfg, profile) == 200.0

    def test_no_layout_beats_the_bound(self, diamond_cfg):
        import itertools

        ids, profile = diamond_ids_and_profile(diamond_cfg)
        bound = exttsp_max_score(diamond_cfg, profile)
        rest = [i for i in ids.values() if i != ids["entry"]]
        for perm in itertools.permutations(rest):
            layout = Layout(order=(ids["entry"], *perm))
            assert exttsp_score(diamond_cfg, layout, profile) <= bound

    def test_out_of_window_edges_score_nothing(self, diamond_cfg):
        ids, profile = diamond_ids_and_profile(diamond_cfg)
        layout = Layout(order=(
            ids["entry"], ids["right"], ids["exit"], ids["left"],
        ))
        tight = ExtTSPParams(forward_window=0, backward_window=0)
        # Only the two fall-throughs survive windows of width zero.
        assert exttsp_score(diamond_cfg, layout, profile, tight) == 180.0

    def test_phantom_and_unexecuted_edges_are_ignored(self, diamond_cfg):
        ids, profile = diamond_ids_and_profile(diamond_cfg)
        layout = Layout(order=(
            ids["entry"], ids["right"], ids["exit"], ids["left"],
        ))
        baseline = exttsp_score(diamond_cfg, layout, profile)
        # Not a CFG edge; a zero count; a block id outside the CFG.
        profile.counts[(ids["exit"], ids["entry"])] = 500
        profile.counts[(ids["right"], ids["exit"])] += 0
        profile.counts[(9999, ids["exit"])] = 500
        profile.counts[(ids["left"], ids["exit"])] = 10  # unchanged
        assert exttsp_score(diamond_cfg, layout, profile) == baseline

    def test_empty_profile_scores_zero(self, diamond_cfg):
        layout = original_layout(diamond_cfg)
        assert exttsp_score(diamond_cfg, layout, EdgeProfile()) == 0.0
        assert exttsp_max_score(diamond_cfg, EdgeProfile()) == 0.0

    def test_program_score_sums_procedures(self, loop_program, loop_profile):
        from repro.core.layout import ProgramLayout

        cfg = loop_program["main"].cfg
        layouts = ProgramLayout(layouts={"main": original_layout(cfg)})
        total = exttsp_program_score(loop_program, layouts, loop_profile)
        assert total == pytest.approx(
            exttsp_score(cfg, layouts["main"], loop_profile["main"])
        )


class TestChainMergeAligners:
    def test_layouts_are_valid_permutations(self, loop_cfg, loop_profile):
        profile = loop_profile["main"]
        chain_merge_layout(loop_cfg, profile).check_against(loop_cfg)
        exttsp_layout(loop_cfg, profile).check_against(loop_cfg)

    def test_entry_block_leads(self, loop_cfg, loop_profile):
        profile = loop_profile["main"]
        assert chain_merge_layout(loop_cfg, profile).order[0] == loop_cfg.entry
        assert exttsp_layout(loop_cfg, profile).order[0] == loop_cfg.entry

    def test_hot_edge_becomes_fallthrough(self, diamond_cfg):
        ids, profile = diamond_ids_and_profile(diamond_cfg)
        layout = chain_merge_layout(diamond_cfg, profile)
        position = layout.positions
        assert position[ids["right"]] == position[ids["entry"]] + 1
        assert position[ids["exit"]] == position[ids["right"]] + 1

    def test_deterministic(self, loop_cfg, loop_profile):
        profile = loop_profile["main"]
        assert (
            exttsp_layout(loop_cfg, profile).order
            == exttsp_layout(loop_cfg, profile).order
        )
        assert (
            chain_merge_layout(loop_cfg, profile).order
            == chain_merge_layout(loop_cfg, profile).order
        )

    def test_refinement_never_loses_score(self, loop_cfg, loop_profile):
        profile = loop_profile["main"]
        merged = exttsp_score(
            loop_cfg, chain_merge_layout(loop_cfg, profile), profile
        )
        refined = exttsp_score(
            loop_cfg, exttsp_layout(loop_cfg, profile), profile
        )
        assert refined >= merged - 1e-9

    def test_beats_original_layout_on_the_objective(
        self, loop_cfg, loop_profile
    ):
        profile = loop_profile["main"]
        original = exttsp_score(
            loop_cfg, original_layout(loop_cfg), profile
        )
        aligned = exttsp_score(
            loop_cfg, exttsp_layout(loop_cfg, profile), profile
        )
        assert aligned >= original - 1e-9
        assert aligned <= exttsp_max_score(loop_cfg, profile) + 1e-9

    def test_stats_are_populated(self, loop_cfg, loop_profile):
        profile = loop_profile["main"]
        stats = MergeStats()
        layout = exttsp_layout(loop_cfg, profile, stats=stats)
        assert stats.merges > 0
        assert stats.score == pytest.approx(
            exttsp_score(loop_cfg, layout, profile)
        )

    def test_empty_profile_degrades_gracefully(self, loop_cfg):
        layout = exttsp_layout(loop_cfg, EdgeProfile())
        layout.check_against(loop_cfg)
        assert layout.order[0] == loop_cfg.entry

    def test_penalty_no_worse_than_original(self, loop_cfg, loop_profile):
        """The Ext-TSP objective is not the paper's penalty, but a layout
        chasing fall-throughs should still beat the source-order layout
        under the 1997 model."""
        profile = loop_profile["main"]
        exttsp_pen = evaluate_layout(
            loop_cfg, exttsp_layout(loop_cfg, profile), profile, ALPHA_21164
        ).total
        original_pen = evaluate_layout(
            loop_cfg, original_layout(loop_cfg), profile, ALPHA_21164
        ).total
        assert exttsp_pen <= original_pen + 1e-9
