"""Tests for interprocedural procedure ordering."""

import pytest

from repro.core.proc_order import pettis_hansen_procedure_order, reorder_program
from repro.profiles import ProgramProfile, profile_from_counts


class TestProcedureOrder:
    def test_hot_pair_adjacent(self, mini_module, mini_profile):
        order = pettis_hansen_procedure_order(mini_module.program, mini_profile)
        assert sorted(order) == sorted(mini_module.program.procedures)
        # main calls bucket twice per iteration: they should be adjacent.
        hottest = max(mini_profile.call_pairs, key=mini_profile.call_pairs.get)
        caller, callee = hottest
        assert abs(order.index(caller) - order.index(callee)) == 1

    def test_entry_first(self, mini_module, mini_profile):
        order = pettis_hansen_procedure_order(mini_module.program, mini_profile)
        assert order[0] == mini_module.program.main

    def test_empty_profile_keeps_everything(self, mini_module):
        order = pettis_hansen_procedure_order(
            mini_module.program, ProgramProfile()
        )
        assert sorted(order) == sorted(mini_module.program.procedures)
        assert order[0] == "main"

    def test_reorder_program(self, mini_module, mini_profile):
        order = pettis_hansen_procedure_order(mini_module.program, mini_profile)
        reordered = reorder_program(mini_module.program, order)
        assert [p.name for p in reordered] == order
        assert reordered.main == mini_module.program.main

    def test_reorder_rejects_non_permutation(self, mini_module):
        with pytest.raises(ValueError):
            reorder_program(mini_module.program, ["main"])

    def test_call_pairs_recorded_by_vm(self, mini_profile):
        assert ("main", "bucket") in mini_profile.call_pairs
        assert mini_profile.call_pairs[("main", "bucket")] > 0

    def test_ordering_improves_icache_locality(self, mini_module, mini_run):
        """Hot-pair-adjacent procedure order never increases I-cache misses
        on a small cache (and typically decreases them)."""
        from repro.core import align_program, train_predictors
        from repro.machine import ALPHA_21164, DirectMappedICache
        from repro.machine.timing import simulate_timing

        result, profile = mini_run
        program = mini_module.program
        layouts = align_program(program, profile, method="tsp")
        predictors = train_predictors(program, profile)

        def misses(prog):
            timing = simulate_timing(
                prog, layouts, profile, result.trace.trace, ALPHA_21164,
                predictors=predictors,
                icache=DirectMappedICache(512, 32),
            )
            return timing.icache_misses

        baseline = misses(program)
        order = pettis_hansen_procedure_order(program, profile)
        improved = misses(reorder_program(program, order))
        assert improved <= baseline * 1.05
