"""Tests for the Calder–Grunwald exhaustive hot-set variant."""

import pytest

from repro.core import align_program, calder_grunwald_layout, evaluate_layout, evaluate_program
from repro.machine import ALPHA_21164
from repro.profiles import EdgeProfile


class TestExhaustiveHotSet:
    def test_layout_valid(self, loop_cfg, loop_profile):
        layout = calder_grunwald_layout(
            loop_cfg, loop_profile["main"], ALPHA_21164, exhaustive_edges=15
        )
        layout.check_against(loop_cfg)

    def test_never_worse_than_plain_cg(self, loop_cfg, loop_profile):
        profile = loop_profile["main"]
        plain = evaluate_layout(
            loop_cfg,
            calder_grunwald_layout(loop_cfg, profile, ALPHA_21164),
            profile, ALPHA_21164,
        ).total
        exhaustive = evaluate_layout(
            loop_cfg,
            calder_grunwald_layout(
                loop_cfg, profile, ALPHA_21164, exhaustive_edges=15
            ),
            profile, ALPHA_21164,
        ).total
        # Exhaustive seeding of the hot chain should not hurt here.
        assert exhaustive <= plain * 1.01

    def test_small_hot_sets_skipped(self, diamond_cfg):
        profile = EdgeProfile({(0, 1): 10, (1, 3): 10})
        layout = calder_grunwald_layout(
            diamond_cfg, profile, ALPHA_21164, exhaustive_edges=15
        )
        layout.check_against(diamond_cfg)

    def test_entry_pinned_first_in_hot_chain(self, loop_cfg, loop_profile):
        layout = calder_grunwald_layout(
            loop_cfg, loop_profile["main"], ALPHA_21164,
            exhaustive_edges=15, max_hot_blocks=6,
        )
        assert layout.order[0] == loop_cfg.entry

    def test_align_program_method(self, mini_module, mini_profile):
        program = mini_module.program
        layouts = align_program(program, mini_profile, method="cg-exhaustive")
        layouts.check_against(program)
        penalty = evaluate_program(
            program, layouts, mini_profile, ALPHA_21164
        ).total
        original = evaluate_program(
            program,
            align_program(program, mini_profile, method="original"),
            mini_profile,
            ALPHA_21164,
        ).total
        assert penalty <= original

    def test_close_to_tsp_on_suite_case(self):
        """CG's claim: the exhaustive variant 'produces slightly better
        layouts' — on our workloads it sits between plain greedy and TSP."""
        from repro.experiments import profiled_run
        from repro.workloads import compile_benchmark

        module = compile_benchmark("esp")
        profile = profiled_run("esp", "tl").profile
        program = module.program
        totals = {}
        for method in ("greedy", "cg-exhaustive", "tsp"):
            layouts = align_program(program, profile, method=method)
            totals[method] = evaluate_program(
                program, layouts, profile, ALPHA_21164
            ).total
        assert totals["tsp"] <= totals["cg-exhaustive"] + 1e-6
        assert totals["cg-exhaustive"] <= totals["greedy"] * 1.02
