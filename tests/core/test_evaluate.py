"""Tests for the analytic layout evaluator."""

import pytest

from repro.core import (
    evaluate_layout,
    evaluate_program,
    original_layout,
    original_program_layout,
    train_predictors,
)
from repro.machine import ALPHA_21164, StaticPredictor
from repro.profiles import EdgeProfile, profile_from_counts


class TestEvaluateLayout:
    def test_empty_profile_is_free(self, loop_cfg):
        result = evaluate_layout(
            loop_cfg, original_layout(loop_cfg), EdgeProfile(), ALPHA_21164
        )
        assert result.total == 0

    def test_breakdown_components_sum(self, loop_cfg, loop_profile):
        result = evaluate_layout(
            loop_cfg, original_layout(loop_cfg), loop_profile["main"], ALPHA_21164
        )
        assert result.total == pytest.approx(
            result.redirect + result.mispredict + result.jump
        )
        assert result.total > 0

    def test_cross_profile_prediction(self, diamond_cfg):
        """Evaluating with a testing profile and a stale training predictor
        charges mispredicts where the branch flipped direction."""
        b = {blk.label: blk.block_id for blk in diamond_cfg}
        train = EdgeProfile({(b["entry"], b["left"]): 90,
                             (b["entry"], b["right"]): 10,
                             (b["left"], b["exit"]): 90,
                             (b["right"], b["exit"]): 10})
        test = EdgeProfile({(b["entry"], b["left"]): 10,
                            (b["entry"], b["right"]): 90,
                            (b["left"], b["exit"]): 10,
                            (b["right"], b["exit"]): 90})
        layout = original_layout(diamond_cfg)
        predictor = StaticPredictor.train(diamond_cfg, train)
        stale = evaluate_layout(
            diamond_cfg, layout, test, ALPHA_21164, predictor=predictor
        )
        fresh = evaluate_layout(diamond_cfg, layout, test, ALPHA_21164)
        assert stale.total > fresh.total


class TestEvaluateProgram:
    def test_sums_over_procedures(self, mini_module, mini_profile):
        program = mini_module.program
        layouts = original_program_layout(program)
        result = evaluate_program(program, layouts, mini_profile, ALPHA_21164)
        assert set(result.per_procedure) == set(program.procedures)
        assert result.total == pytest.approx(
            sum(b.total for b in result.per_procedure.values())
        )
        assert result.total > 0

    def test_unprofiled_procedure_contributes_zero(self, mini_module):
        program = mini_module.program
        layouts = original_program_layout(program)
        profile = profile_from_counts({})
        result = evaluate_program(program, layouts, profile, ALPHA_21164)
        assert result.total == 0

    def test_train_predictors_covers_all_procedures(
        self, mini_module, mini_profile
    ):
        predictors = train_predictors(mini_module.program, mini_profile)
        assert set(predictors) == set(mini_module.program.procedures)
