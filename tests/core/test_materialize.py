"""Tests for layout materialization: branch inversion, jumps, fixups,
addresses."""

import pytest

from repro.cfg import Procedure, Program
from repro.core import (
    PhysicalKind,
    materialize_procedure,
    materialize_program,
    original_layout,
    original_program_layout,
)
from repro.core.layout import Layout
from repro.machine import StaticPredictor, WORD_BYTES
from repro.profiles import EdgeProfile


def predictor_for(cfg, counts):
    return StaticPredictor.train(cfg, EdgeProfile(counts))


class TestConditionalMaterialization:
    def test_fallthrough_arm_chosen_branch_inverted(self, diamond_cfg):
        # Layout: entry, right, left, exit — branch must target 'left'.
        b = {blk.label: blk.block_id for blk in diamond_cfg}
        layout = Layout((b["entry"], b["right"], b["left"], b["exit"]))
        predictor = predictor_for(
            diamond_cfg, {(b["entry"], b["left"]): 9, (b["entry"], b["right"]): 1}
        )
        physical = materialize_procedure("p", diamond_cfg, layout, predictor)
        entry = physical.block_for(b["entry"])
        assert entry.kind is PhysicalKind.COND
        assert entry.fallthrough == b["right"]
        assert entry.branch_target == b["left"]
        assert entry.fixup_target is None

    def test_fixup_inserted_when_neither_arm_follows(self, diamond_cfg):
        b = {blk.label: blk.block_id for blk in diamond_cfg}
        layout = Layout((b["entry"], b["exit"], b["left"], b["right"]))
        predictor = predictor_for(
            diamond_cfg, {(b["entry"], b["left"]): 9, (b["entry"], b["right"]): 1}
        )
        physical = materialize_procedure("p", diamond_cfg, layout, predictor)
        entry = physical.block_for(b["entry"])
        # Branch goes to the predicted arm; fixup jump carries the other.
        assert entry.branch_target == b["left"]
        assert entry.fixup_target == b["right"]
        fixup = physical.fixup_after(b["entry"])
        assert fixup is not None
        assert fixup.kind is PhysicalKind.FIXUP
        assert fixup.branch_target == b["right"]
        assert fixup.words == 1
        assert physical.fixup_count == 1


class TestUnconditionalMaterialization:
    def test_jump_deleted_when_successor_follows(self, loop_cfg, loop_profile):
        layout = original_layout(loop_cfg)
        predictor = StaticPredictor.train(loop_cfg, loop_profile["main"])
        physical = materialize_procedure("p", loop_cfg, layout, predictor)
        entry = physical.block_for(loop_cfg.entry)
        # entry's single successor (head) is next in the original layout.
        assert entry.kind is PhysicalKind.FALLTHROUGH
        assert entry.cti_words == 0

    def test_jump_kept_when_successor_elsewhere(self, loop_cfg, loop_profile):
        blocks = list(original_layout(loop_cfg).order)
        # Move entry's successor to the end.
        successor = loop_cfg.successors(loop_cfg.entry)[0]
        blocks.remove(successor)
        blocks.append(successor)
        layout = Layout(tuple(blocks))
        predictor = StaticPredictor.train(loop_cfg, loop_profile["main"])
        physical = materialize_procedure("p", loop_cfg, layout, predictor)
        entry = physical.block_for(loop_cfg.entry)
        assert entry.kind is PhysicalKind.JUMP
        assert entry.cti_words == 1


class TestAddresses:
    def test_addresses_contiguous_and_sized(self, loop_cfg, loop_profile):
        layout = original_layout(loop_cfg)
        predictor = StaticPredictor.train(loop_cfg, loop_profile["main"])
        physical = materialize_procedure(
            "p", loop_cfg, layout, predictor, start_address=128
        )
        assert physical.start_address == 128
        address = 128
        for block in physical.blocks:
            assert block.address == address
            address += block.words * WORD_BYTES
        assert physical.end_address == address
        assert physical.code_words == (address - 128) // WORD_BYTES

    def test_program_packing_aligns_procedures(self, mini_module, mini_profile):
        from repro.core.evaluate import train_predictors

        program = mini_module.program
        layouts = original_program_layout(program)
        predictors = train_predictors(program, mini_profile)
        physical = materialize_program(
            program, layouts, predictors, proc_align_words=8
        )
        align_bytes = 8 * WORD_BYTES
        previous_end = 0
        for proc in program:
            materialized = physical[proc.name]
            assert materialized.start_address % align_bytes == 0
            assert materialized.start_address >= previous_end
            previous_end = materialized.end_address
        assert physical.code_words > 0

    def test_register_and_return_blocks(self, loop_cfg, loop_profile):
        layout = original_layout(loop_cfg)
        predictor = StaticPredictor.train(loop_cfg, loop_profile["main"])
        physical = materialize_procedure("p", loop_cfg, layout, predictor)
        kinds = {block.kind for block in physical.blocks}
        assert PhysicalKind.REGISTER in kinds
        assert PhysicalKind.RETURN in kinds
        switch = next(
            b for b in physical.blocks if b.kind is PhysicalKind.REGISTER
        )
        assert switch.cti_words == 1

    def test_layout_validation_enforced(self, diamond_cfg):
        with pytest.raises(Exception):
            materialize_procedure(
                "p", diamond_cfg, Layout((0, 1)), StaticPredictor({})
            )
