"""Tests for the aligner's degradation ladder under faults and budgets.

The acceptance bar: with faults injected at *every* rung, alignment still
completes without raising, records which rung produced each layout, and the
resulting penalty is never worse than the original (unaligned) layout.
"""

import pytest

from repro.budget import Budget
from repro.core import align_program, evaluate_program
from repro.core.align import AlignmentReport
from repro.core.aligners.tsp_aligner import (
    DEGRADATION_RUNGS,
    alignment_lower_bound,
    tsp_align,
)
from repro.core.layout import original_layout
from repro.faults import inject_faults

#: Fault sets driving the ladder to each successive rung.
RUNG_FAULTS = {
    "construction": dict(solver_timeout=True),
    "greedy": dict(solver_timeout=True, construction_failure=True),
    "original": dict(
        solver_timeout=True, construction_failure=True, greedy_failure=True
    ),
}


class TestTspAlignLadder:
    @pytest.mark.parametrize("rung", list(RUNG_FAULTS))
    def test_each_rung_yields_a_valid_cheap_layout(
        self, rung, loop_cfg, loop_profile, machine_model
    ):
        profile = loop_profile.procedures["main"]
        clean = tsp_align(loop_cfg, profile, machine_model, seed=0)
        assert clean.degraded == "none" and clean.warning is None

        with inject_faults(**RUNG_FAULTS[rung]) as plan:
            degraded = tsp_align(loop_cfg, profile, machine_model, seed=0)
        assert plan.trips("solver") == 1
        assert degraded.degraded == rung
        assert degraded.warning  # a structured reason, not a silent fallback
        # Valid permutation of the same blocks.
        assert sorted(degraded.layout.order) == sorted(clean.layout.order)
        # Never worse than no reordering; never better than the real solve.
        original_cost = degraded.instance.layout_cost(original_layout(loop_cfg))
        assert degraded.cost <= original_cost + 1e-9
        assert degraded.cost >= clean.cost - 1e-9

    def test_rung_names_are_the_documented_ladder(self):
        assert DEGRADATION_RUNGS == ("none", "construction", "greedy", "original")

    def test_exhausted_budget_degrades_instead_of_raising(
        self, loop_cfg, loop_profile, machine_model
    ):
        profile = loop_profile.procedures["main"]
        result = tsp_align(
            loop_cfg, profile, machine_model, seed=0,
            budget=Budget(max_iterations=0),
        )
        assert result.degraded != "none"
        assert result.warning


class TestAlignProgramLadder:
    @pytest.mark.parametrize("rung", list(RUNG_FAULTS))
    def test_program_alignment_survives_faults(
        self, rung, mini_module, mini_profile, machine_model
    ):
        program = mini_module.program
        baseline_layouts = align_program(program, mini_profile, method="original")
        baseline = evaluate_program(
            program, baseline_layouts, mini_profile, machine_model
        )

        report = AlignmentReport()
        with inject_faults(**RUNG_FAULTS[rung]):
            layouts = align_program(
                program, mini_profile, method="tsp", model=machine_model,
                report=report,
            )
        # Every alignable procedure was driven to exactly the expected rung.
        assert report.degraded
        assert set(report.degraded.values()) == {rung}
        assert report.warnings
        penalty = evaluate_program(program, layouts, mini_profile, machine_model)
        assert penalty.total <= baseline.total + 1e-9

    def test_budget_degradation_recorded_in_report(
        self, mini_module, mini_profile, machine_model
    ):
        program = mini_module.program
        report = AlignmentReport()
        layouts = align_program(
            program, mini_profile, method="tsp", model=machine_model,
            budget=Budget(max_iterations=0), report=report,
        )
        assert report.degraded
        assert all(r in DEGRADATION_RUNGS for r in report.degraded.values())
        baseline_layouts = align_program(program, mini_profile, method="original")
        baseline = evaluate_program(
            program, baseline_layouts, mini_profile, machine_model
        )
        penalty = evaluate_program(program, layouts, mini_profile, machine_model)
        assert penalty.total <= baseline.total + 1e-9


class TestLowerBoundDegradation:
    def test_bound_fault_returns_the_loosest_certified_bound(
        self, loop_cfg, loop_profile, machine_model
    ):
        profile = loop_profile.procedures["main"]
        with inject_faults(bound_timeout=True):
            assert alignment_lower_bound(loop_cfg, profile, machine_model) == 0.0

    def test_bound_with_exhausted_budget_stays_sound(
        self, loop_cfg, loop_profile, machine_model
    ):
        profile = loop_profile.procedures["main"]
        full = alignment_lower_bound(loop_cfg, profile, machine_model)
        cut = alignment_lower_bound(
            loop_cfg, profile, machine_model, budget=Budget(max_iterations=0)
        )
        assert 0.0 <= cut <= full + 1e-9
