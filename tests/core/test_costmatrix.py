"""Tests for the DTSP reduction: matrix construction and walk costs."""

import itertools
import random

import numpy as np
import pytest

from repro.core import (
    DUMMY_CITY,
    build_alignment_instance,
    evaluate_layout,
    original_layout,
)
from repro.core.costmatrix import has_real_choice, instance_statistics
from repro.core.layout import Layout
from repro.machine import ALPHA_21164
from repro.profiles import EdgeProfile


@pytest.fixture
def loop_instance(loop_cfg, loop_profile):
    return build_alignment_instance(
        loop_cfg, loop_profile["main"], ALPHA_21164
    )


class TestStructure:
    def test_cities_are_blocks_plus_dummy(self, loop_cfg, loop_instance):
        assert loop_instance.n == len(loop_cfg) + 1
        assert loop_instance.cities[0] == loop_cfg.entry
        assert loop_instance.cities[-1] == DUMMY_CITY

    def test_anchoring_edges(self, loop_cfg, loop_instance):
        matrix, big = loop_instance.matrix, loop_instance.big
        dummy, entry = loop_instance.dummy_index, loop_instance.entry_index
        assert matrix[dummy, entry] == 0.0
        # Dummy can go nowhere else; nothing else may precede the entry.
        for j in range(loop_instance.n):
            if j != entry:
                assert matrix[dummy, j] == big
        for i in range(loop_instance.n):
            if i != dummy:
                assert matrix[:, entry][i] == big

    def test_diagonal_forbidden(self, loop_instance):
        assert (np.diag(loop_instance.matrix) == loop_instance.big).all()

    def test_costs_nonnegative(self, loop_instance):
        assert (loop_instance.matrix >= 0).all()


class TestWalkCostEqualsEvaluator:
    """The reduction's central claim: walk cost == layout control penalty."""

    def test_original_layout(self, loop_cfg, loop_profile, loop_instance):
        layout = original_layout(loop_cfg)
        expected = evaluate_layout(
            loop_cfg, layout, loop_profile["main"], ALPHA_21164
        ).total
        assert loop_instance.layout_cost(layout) == pytest.approx(expected)

    def test_random_layouts(self, loop_cfg, loop_profile, loop_instance):
        rng = random.Random(4)
        rest = [b for b in loop_cfg.block_ids if b != loop_cfg.entry]
        for _ in range(25):
            rng.shuffle(rest)
            layout = Layout((loop_cfg.entry, *rest))
            expected = evaluate_layout(
                loop_cfg, layout, loop_profile["main"], ALPHA_21164
            ).total
            assert loop_instance.layout_cost(layout) == pytest.approx(expected)

    def test_all_layouts_of_small_cfg(self, diamond_cfg):
        profile = EdgeProfile({(0, 1): 70, (0, 2): 30, (1, 3): 70, (2, 3): 30})
        instance = build_alignment_instance(diamond_cfg, profile, ALPHA_21164)
        rest = [b for b in diamond_cfg.block_ids if b != diamond_cfg.entry]
        for perm in itertools.permutations(rest):
            layout = Layout((diamond_cfg.entry, *perm))
            expected = evaluate_layout(
                diamond_cfg, layout, profile, ALPHA_21164
            ).total
            assert instance.layout_cost(layout) == pytest.approx(expected)


class TestCycleConversion:
    def test_layout_from_cycle_rotates_dummy_last(self, loop_instance):
        n = loop_instance.n
        cycle = list(range(n))
        layout = loop_instance.layout_from_cycle(cycle)
        assert len(layout) == n - 1
        assert layout.order[0] == loop_instance.cities[0]

    def test_bad_cycle_rejected(self, loop_instance):
        with pytest.raises(ValueError):
            loop_instance.layout_from_cycle([0, 0, 1])


class TestHelpers:
    def test_statistics(self, loop_instance):
        stats = instance_statistics(loop_instance)
        assert stats["cities"] == loop_instance.n
        assert stats["max_cost"] < loop_instance.big

    def test_has_real_choice(self, loop_cfg, loop_profile):
        assert has_real_choice(loop_cfg, loop_profile["main"])
        assert not has_real_choice(loop_cfg, EdgeProfile())
