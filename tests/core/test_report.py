"""Tests for the human-readable layout reports."""

import pytest

from repro.core import align_program, original_layout
from repro.core.report import describe_layout, describe_program
from repro.machine import ALPHA_21164
from repro.profiles import EdgeProfile


class TestDescribeLayout:
    def test_original_layout_reports_no_moves(self, loop_cfg, loop_profile):
        report = describe_layout(
            loop_cfg, original_layout(loop_cfg), loop_profile["main"],
            ALPHA_21164, name="main",
        )
        assert report.blocks_moved == 0
        assert len(report.blocks) == len(loop_cfg)
        assert report.total_penalty == pytest.approx(report.original_penalty)

    def test_aligned_layout_reports_improvements(self, loop_cfg, loop_profile):
        from repro.core import tsp_align
        alignment = tsp_align(loop_cfg, loop_profile["main"], ALPHA_21164)
        report = describe_layout(
            loop_cfg, alignment.layout, loop_profile["main"], ALPHA_21164,
            name="main",
        )
        assert report.total_penalty == pytest.approx(alignment.cost)
        assert report.total_penalty <= report.original_penalty
        assert report.blocks_moved > 0

    def test_penalties_sum_matches_evaluator(self, loop_cfg, loop_profile):
        from repro.core import evaluate_layout, pettis_hansen_layout
        layout = pettis_hansen_layout(loop_cfg, loop_profile["main"])
        report = describe_layout(
            loop_cfg, layout, loop_profile["main"], ALPHA_21164
        )
        expected = evaluate_layout(
            loop_cfg, layout, loop_profile["main"], ALPHA_21164
        ).total
        assert report.total_penalty == pytest.approx(expected)

    def test_rows_shape(self, diamond_cfg):
        profile = EdgeProfile({(0, 1): 10, (0, 2): 5, (1, 3): 10, (2, 3): 5})
        report = describe_layout(
            diamond_cfg, original_layout(diamond_cfg), profile, ALPHA_21164
        )
        rows = report.rows()
        assert len(rows) == 4
        assert rows[0][0] == 0  # position column


class TestDescribeProgram:
    def test_covers_all_procedures(self, mini_module, mini_profile):
        layouts = align_program(mini_module.program, mini_profile, method="tsp")
        reports = describe_program(
            mini_module.program, layouts, mini_profile, ALPHA_21164
        )
        assert set(reports) == set(mini_module.program.procedures)
        total = sum(r.total_penalty for r in reports.values())
        from repro.core import evaluate_program
        expected = evaluate_program(
            mini_module.program, layouts, mini_profile, ALPHA_21164
        ).total
        assert total == pytest.approx(expected)

    def test_cli_details_flag(self, tmp_path, capsys):
        from repro.cli import main
        source = tmp_path / "p.tl"
        source.write_text("""
        fn main() {
          var i = 0;
          while (i < input_len()) {
            if (input(i) % 3) { output(i); }
            i = i + 1;
          }
          return i;
        }
        """)
        assert main([
            "align", str(source),
            "--inputs", ",".join(str(i) for i in range(60)),
            "--method", "tsp", "--details",
        ]) == 0
        out = capsys.readouterr().out
        assert "blocks moved" in out
        assert "ends with" in out
