"""Tests for the fault-injection harness (repro.faults)."""

import pytest

from repro import faults
from repro.errors import DegradationError, SolverBudgetExceeded
from repro.faults import FaultPlan, inject_faults


class TestFaultPlan:
    def test_true_fires_every_call(self):
        plan = FaultPlan()
        assert [plan.fires("s", True) for _ in range(3)] == [True] * 3
        assert plan.calls("s") == 3
        assert plan.trips("s") == 3

    def test_integer_fires_on_nth_call_only(self):
        plan = FaultPlan()
        assert [plan.fires("s", 3) for _ in range(5)] == [
            False, False, True, False, False,
        ]
        assert plan.trips("s") == 1

    def test_false_and_none_never_fire(self):
        plan = FaultPlan()
        assert not plan.fires("s", False)
        assert not plan.fires("s", None)
        assert plan.calls("s") == 2
        assert plan.trips("s") == 0

    def test_true_is_not_treated_as_call_one(self):
        # bool is an int subclass; True must mean "always", not "call 1".
        plan = FaultPlan()
        plan.fires("s", 1)
        assert plan.trips("s") == 1
        plan2 = FaultPlan()
        for _ in range(4):
            plan2.fires("s", True)
        assert plan2.trips("s") == 4


class TestScoping:
    def test_no_plan_outside_context(self):
        assert faults.active() is None
        # Hooks are no-ops without an armed plan.
        faults.check_solver_timeout()
        faults.check_bound_timeout()
        assert faults.vm_block_limit(100) == 100
        assert faults.corrupt_checkpoint_line("abc") == "abc"

    def test_plan_active_inside_context(self):
        with inject_faults() as plan:
            assert faults.active() is plan
        assert faults.active() is None

    def test_innermost_plan_wins(self):
        with inject_faults(solver_timeout=True) as outer:
            with inject_faults() as inner:
                assert faults.active() is inner
                faults.check_solver_timeout()  # inner plan: no fault
            assert faults.active() is outer
            with pytest.raises(SolverBudgetExceeded):
                faults.check_solver_timeout()


class TestHooks:
    def test_solver_timeout_raises_typed_error(self):
        with inject_faults(solver_timeout=True) as plan:
            with pytest.raises(SolverBudgetExceeded) as info:
                faults.check_solver_timeout()
            assert info.value.where == "fault:solver"
            assert plan.trips("solver") == 1

    def test_rung_failures_raise_degradation_error(self):
        with inject_faults(construction_failure=True, greedy_failure=True):
            with pytest.raises(DegradationError):
                faults.check_construction_failure()
            with pytest.raises(DegradationError):
                faults.check_greedy_failure()

    def test_bound_timeout(self):
        with inject_faults(bound_timeout=True):
            with pytest.raises(SolverBudgetExceeded) as info:
                faults.check_bound_timeout()
            assert info.value.where == "fault:bound"

    def test_vm_block_limit_takes_the_tighter_value(self):
        with inject_faults(vm_max_blocks=10):
            assert faults.vm_block_limit(1_000_000) == 10
            assert faults.vm_block_limit(5) == 5

    def test_corrupt_checkpoint_line_truncates_on_nth_write(self):
        with inject_faults(checkpoint_corrupt_on=2) as plan:
            line = "x" * 40
            assert faults.corrupt_checkpoint_line(line) == line
            assert len(faults.corrupt_checkpoint_line(line)) == 20
            assert faults.corrupt_checkpoint_line(line) == line
            assert plan.trips("checkpoint") == 1


class TestVMIntegration:
    def test_vm_runaway_fault_trips_typed_error(self, mini_module):
        from repro.lang.vm import VMRunawayError, execute

        with inject_faults(vm_max_blocks=10):
            with pytest.raises(VMRunawayError, match="exceeded"):
                execute(mini_module, [1, 2, 3])


class TestPeriodicTriggers:
    def test_percent_k_fires_every_kth_call(self):
        plan = FaultPlan()
        assert [plan.fires("s", "%3") for _ in range(7)] == [
            False, False, True, False, False, True, False,
        ]
        assert plan.trips("s") == 2

    def test_malformed_periodic_strings_never_fire(self):
        plan = FaultPlan()
        for trigger in ("%", "%0", "%x", "three"):
            assert not plan.fires("s", trigger)
        assert plan.trips("s") == 0


class TestSiteGroups:
    def test_pipeline_sites_arm_the_cache_bypass(self):
        assert FaultPlan(solver_timeout=True).arms_pipeline_sites()
        assert FaultPlan(worker_crash="%5").arms_pipeline_sites()
        assert FaultPlan(task_timeout=3).arms_pipeline_sites()

    def test_store_only_plans_do_not(self):
        assert not FaultPlan().arms_pipeline_sites()
        assert not FaultPlan(store_corrupt=True).arms_pipeline_sites()
        assert not FaultPlan(
            store_corrupt="%2", store_io_error=1
        ).arms_pipeline_sites()


class TestSupervisionHooks:
    def test_worker_crash_and_task_timeout_fire_from_context_plan(self):
        with inject_faults(worker_crash=1, task_timeout=1) as plan:
            assert faults.worker_crash_fires()
            assert not faults.worker_crash_fires()
            assert faults.task_timeout_fires()
        assert plan.trips("worker_crash") == 1
        assert plan.trips("task_timeout") == 1

    def test_store_hooks(self):
        from repro.errors import ArtifactStoreError

        with inject_faults(store_corrupt=True, store_io_error=True) as plan:
            assert faults.corrupt_store_bytes(b"x" * 40) == b"x" * 20
            with pytest.raises(ArtifactStoreError):
                faults.check_store_io()
        assert plan.trips("store_corrupt") == 1
        assert plan.trips("store_io") == 1
        # No plan: hooks are no-ops.
        assert faults.corrupt_store_bytes(b"abc") == b"abc"
        faults.check_store_io()


class TestChaosPlan:
    def test_parses_sites_and_triggers(self, monkeypatch):
        monkeypatch.setenv(
            faults.CHAOS_ENV,
            "worker_crash=%7,store_corrupt=1,task_timeout=5,unknown=3",
        )
        plan = faults.chaos_plan()
        assert plan.worker_crash == "%7"
        assert plan.store_corrupt is True   # env "1" means "always"
        assert plan.task_timeout == 5
        assert not hasattr(plan, "unknown")

    def test_reparses_when_the_variable_changes(self, monkeypatch):
        monkeypatch.setenv(faults.CHAOS_ENV, "worker_crash=true")
        assert faults.chaos_plan().worker_crash is True
        monkeypatch.setenv(faults.CHAOS_ENV, "")
        assert faults.chaos_plan() is None

    def test_chaos_reaches_executor_sites_only(self, monkeypatch):
        """Chaos arms only subsystems contracted to absorb sabotage: the
        solver-facing hooks must ignore it even when the site parses."""
        monkeypatch.setenv(
            faults.CHAOS_ENV, "worker_crash=1,solver_timeout=1"
        )
        faults.check_solver_timeout()   # no raise: context plan only
        assert faults.worker_crash_fires()
        monkeypatch.setenv(faults.CHAOS_ENV, "")


class TestShardSites:
    def test_shard_death_and_wedge_fire_from_context_plan(self):
        with inject_faults(shard_death=1, shard_wedge=1) as plan:
            assert faults.shard_death_fires()
            assert not faults.shard_death_fires()
            assert faults.shard_wedge_fires()
            assert not faults.shard_wedge_fires()
        assert plan.trips("shard_death") == 1
        assert plan.trips("shard_wedge") == 1

    def test_chaos_env_reaches_shard_sites(self, monkeypatch):
        monkeypatch.setenv(faults.CHAOS_ENV, "shard_death=1")
        assert faults.shard_death_fires()
        assert not faults.shard_wedge_fires()
        monkeypatch.setenv(faults.CHAOS_ENV, "")

    def test_no_plan_is_a_no_op(self):
        assert not faults.shard_death_fires()
        assert not faults.shard_wedge_fires()
