"""The trace event schema: validation, identities, loading."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    IDENTITY_FIELDS,
    SCHEMA_VERSION,
    TIMING_FIELDS,
    load_trace,
    span_identity,
    validate_event,
    validate_trace_lines,
)


def make_span(**overrides) -> dict:
    event = {
        "v": SCHEMA_VERSION,
        "type": "span",
        "name": "tsp_solver",
        "attrs": {"proc": "main", "cities": 12},
        "t0_ms": 1.5,
        "dur_ms": 3.25,
        "pid": 41,
        "span_id": "29-1",
        "parent_id": None,
        "seq": 2,
    }
    event.update(overrides)
    return event


def make_counter(**overrides) -> dict:
    event = {
        "v": SCHEMA_VERSION,
        "type": "counter",
        "name": "tsp.kicks",
        "value": 42,
        "stable": True,
    }
    event.update(overrides)
    return event


class TestValidateEvent:
    def test_well_formed_events_pass(self):
        assert validate_event(make_span()) == []
        assert validate_event(make_counter()) == []
        assert validate_event({"v": SCHEMA_VERSION, "type": "meta"}) == []

    def test_non_object_and_unknown_type_rejected(self):
        assert validate_event([1, 2]) != []
        assert any("unknown event type" in p
                   for p in validate_event({"v": SCHEMA_VERSION, "type": "x"}))

    def test_wrong_schema_version_flagged(self):
        problems = validate_event(make_span(v=99))
        assert any("schema version" in p for p in problems)

    def test_missing_fields_named(self):
        event = make_span()
        del event["dur_ms"]
        assert any("dur_ms" in p for p in validate_event(event))

    def test_field_type_errors_flagged(self):
        assert validate_event(make_span(pid="41")) != []
        assert validate_event(make_counter(value="42")) != []
        # bool is an int subclass, but not an acceptable pid/value.
        assert validate_event(make_span(pid=True)) != []
        assert validate_event(make_counter(stable=1)) != []

    def test_parent_id_must_be_string_or_null(self):
        assert validate_event(make_span(parent_id="29-0")) == []
        assert validate_event(make_span(parent_id=7)) != []

    def test_attrs_must_be_scalar(self):
        bad = make_span(attrs={"tour": [1, 2, 3]})
        assert any("non-scalar" in p for p in validate_event(bad))

    def test_negative_duration_rejected(self):
        assert any("negative" in p
                   for p in validate_event(make_span(dur_ms=-1.0)))


class TestSpanIdentity:
    def test_identity_ignores_timing_and_process_placement(self):
        a = make_span(t0_ms=0.0, dur_ms=1.0, pid=1, span_id="1-1", seq=1)
        b = make_span(t0_ms=9.9, dur_ms=5.0, pid=2, span_id="2-7", seq=9)
        assert span_identity(a) == span_identity(b)

    def test_identity_distinguishes_name_and_attrs(self):
        assert span_identity(make_span()) != span_identity(
            make_span(name="dtsp_solve")
        )
        assert span_identity(make_span()) != span_identity(
            make_span(attrs={"proc": "other"})
        )

    def test_excluded_field_sets_cover_the_span_schema(self):
        """Every span field is either content, timing, or identity —
        the determinism comparison must account for all of them."""
        content = {"v", "type", "name", "attrs"}
        assert (
            set(make_span()) == content | TIMING_FIELDS | IDENTITY_FIELDS
        )


class TestTraceLines:
    def test_valid_trace_passes(self):
        lines = [json.dumps(make_span()), "", json.dumps(make_counter())]
        assert validate_trace_lines(lines) == []

    def test_problems_carry_line_numbers(self):
        lines = [json.dumps(make_span()), "{not json", json.dumps(
            make_span(dur_ms=-2))]
        problems = validate_trace_lines(lines)
        assert any(p.startswith("line 2:") for p in problems)
        assert any(p.startswith("line 3:") for p in problems)

    def test_empty_trace_is_a_problem(self):
        assert validate_trace_lines([]) == ["trace is empty"]
        assert validate_trace_lines(["", "  "]) == ["trace is empty"]


class TestLoadTrace:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        events = [make_span(), make_counter()]
        path.write_text("\n".join(json.dumps(e) for e in events) + "\n")
        assert load_trace(path) == events

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(make_span()) + "\n{oops\n")
        with pytest.raises(ValueError, match=":2:"):
            load_trace(path)
