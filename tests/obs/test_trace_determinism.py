"""Trace determinism: worker count is invisible in a trace's content.

The product contract (ISSUE 4): the span/counter *content* of a trace —
span identities and stable counter totals, with timing and process
identity excluded — is a pure function of the work requested, never of
how many workers executed it.  And the counters are *honest*: executor
totals reconcile exactly with the :class:`SupervisionReport`, store
totals with :class:`StoreStats`, cache totals with the cache's own
bookkeeping.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import faults, obs
from repro.budget import RetryPolicy
from repro.pipeline.artifacts import (
    STORE_ENV,
    ArtifactCache,
    ArtifactStore,
    reset_artifact_cache,
)
from repro.pipeline.executor import (
    register_handler,
    run_tasks_supervised,
    shutdown_pool,
)

NO_SLEEP = lambda seconds: None  # noqa: E731


@pytest.fixture(autouse=True)
def _hermetic(monkeypatch):
    """Fresh caches/tracer and no ambient chaos, store, or trace env —
    the two compared runs must be identical-by-construction."""
    from repro.experiments.runner import case_lower_bound, run_case_cached

    monkeypatch.delenv(faults.CHAOS_ENV, raising=False)
    monkeypatch.delenv(STORE_ENV, raising=False)
    monkeypatch.delenv(obs.TRACE_ENV, raising=False)

    def scrub():
        reset_artifact_cache()
        run_case_cached.cache_clear()
        case_lower_bound.cache_clear()
        obs.reset_tracer()

    scrub()
    yield
    scrub()
    shutdown_pool()


def _traced_suite_run(path, jobs: int) -> list[dict]:
    from repro.cli import main

    assert main(
        ["suite", "com.in", "--jobs", str(jobs), "--trace", str(path)]
    ) == 0
    return obs.load_trace(path)


def _content(events: list[dict]):
    """The determinism-relevant view of a trace: the multiset of span
    identities plus every stable counter total."""
    spans = Counter(
        obs.span_identity(e) for e in events if e["type"] == "span"
    )
    counters = {
        e["name"]: e["value"]
        for e in events
        if e["type"] == "counter" and e["stable"]
    }
    return spans, counters


class TestTraceContentDeterminism:
    def test_suite_trace_content_invariant_across_worker_counts(
        self, tmp_path, capsys
    ):
        from repro.experiments.runner import case_lower_bound

        traces = {}
        for jobs in (1, 4):
            reset_artifact_cache()
            case_lower_bound.cache_clear()
            obs.reset_tracer()
            traces[jobs] = _traced_suite_run(
                tmp_path / f"j{jobs}.jsonl", jobs
            )
            capsys.readouterr()  # the table itself is covered elsewhere

        for events in traces.values():
            problems = [
                p for event in events for p in obs.validate_event(event)
            ]
            assert problems == []

        serial_spans, serial_counters = _content(traces[1])
        parallel_spans, parallel_counters = _content(traces[4])
        assert serial_spans == parallel_spans
        assert serial_counters == parallel_counters
        # The trace is not vacuously equal: real work was recorded.
        assert sum(serial_spans.values()) > 0
        assert serial_counters.get("tsp.runs", 0) > 0
        assert (
            serial_counters["align.cache_hits"]
            + serial_counters["align.cache_misses"]
            > 0
        )

    def test_worker_spans_are_merged_into_the_parent_trace(self, tmp_path, capsys):
        """Solver spans execute inside pool workers; the merge protocol
        must land them in the parent's trace file, parented under the
        executor's batch span."""
        events = _traced_suite_run(tmp_path / "t.jsonl", 4)
        capsys.readouterr()
        spans = [e for e in events if e["type"] == "span"]
        by_id = {e["span_id"]: e for e in spans}
        solver = [e for e in spans if e["name"] == "tsp_solver"]
        assert solver, "no solver spans were merged back"
        for event in solver:
            parent = by_id.get(event["parent_id"])
            assert parent is not None, "solver span is an orphan"
            assert parent["name"] == "executor:batch"


class TestCounterReconciliation:
    def test_executor_counters_match_supervision_report(self):
        failures = {"left": 2}

        def flaky(n):
            if n == 0 and failures["left"]:
                failures["left"] -= 1
                raise RuntimeError("transient")
            if n == 13:
                raise ValueError("poison")
            return n

        register_handler("t-obs-flaky", flaky)
        report = run_tasks_supervised(
            "t-obs-flaky", [0, 1, 13], jobs=1,
            policy=RetryPolicy(retries=2), sleep=NO_SLEEP,
        )
        counters = obs.counters()
        assert counters["executor.retried"] == report.retried
        assert counters["executor.quarantined"] == len(report.quarantined)
        assert counters["executor.worker_crashes"] == report.worker_crashes
        assert counters["executor.timeouts"] == report.timeouts
        # 2 flaky failures on task 0 + 2 futile retries of the poison task.
        assert report.retried == 4
        assert len(report.quarantined) == 1  # the poison task

    def test_executor_counters_accumulate_across_batches(self):
        register_handler("t-obs-clean", lambda n: n)
        for _ in range(2):
            with faults.inject_faults(worker_crash=1):
                run_tasks_supervised(
                    "t-obs-clean", [1, 2], jobs=1, sleep=NO_SLEEP,
                )
        counters = obs.counters()
        assert counters["executor.retried"] == 2
        assert counters["executor.worker_crashes"] == 2

    def test_store_counters_match_store_stats(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = ArtifactCache.key("align", "obs", "reconcile")
        store.get(key)          # miss
        store.put(key, [1, 2])  # write
        store.get(key)          # hit
        path = store.path_for(key)
        path.write_bytes(path.read_bytes()[:-1])  # truncate → corrupt
        store.get(key)          # miss + eviction
        counters = obs.counters()
        assert counters["store.hits"] == store.stats.hits == 1
        assert counters["store.misses"] == store.stats.misses == 2
        assert counters["store.writes"] == store.stats.writes == 1
        assert counters["store.evictions"] == store.stats.evictions == 1
        # Store activity is per-process by nature: never in the stable set.
        assert "store.hits" not in obs.counters(stable_only=True)

    def test_cache_counters_match_cache_stats(self):
        cache = ArtifactCache()
        key = ArtifactCache.key("align", "obs", "cache")
        cache.get(key)        # miss
        cache.put(key, "v")
        cache.get(key)        # hit
        stats = cache.stats("align")
        counters = obs.counters()
        assert counters["cache.align.hits"] == stats.hits == 1
        assert counters["cache.align.misses"] == stats.misses == 1

    def test_lock_steal_is_counted(self, tmp_path):
        import os

        from repro.pipeline.artifacts import EntryLock

        path = tmp_path / "e.lock"
        path.write_text("4242")
        os.utime(path, (1, 1))
        lock = EntryLock(path, timeout_ms=40, stale_ms=1000)
        assert lock.acquire()
        lock.release()
        assert obs.counters()["store.lock_steals"] == 1
