"""The Tracer: spans, counters, sinks, and the worker merge protocol."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import Tracer


@pytest.fixture(autouse=True)
def _fresh_tracer(monkeypatch):
    monkeypatch.delenv(obs.TRACE_ENV, raising=False)
    obs.reset_tracer()
    yield
    obs.reset_tracer()


class TestSpans:
    def test_span_times_without_a_sink(self):
        tracer = Tracer()
        with tracer.span("work", proc="p") as sp:
            pass
        assert sp.dur_ms >= 0.0
        assert sp["proc"] == "p"
        assert not tracer.active

    def test_attrs_mutable_until_close(self):
        tracer = Tracer()
        with tracer.collect() as events:
            with tracer.span("work") as sp:
                sp["cities"] = 12
        assert events[0]["attrs"] == {"cities": 12}

    def test_nesting_links_parent_ids(self):
        tracer = Tracer()
        with tracer.collect() as events:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        # Close order: inner is emitted first.
        inner, outer = events[0], events[1]
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_span_events_are_schema_valid(self):
        tracer = Tracer()
        with tracer.collect() as events:
            with tracer.span("work", mode="exact", cities=3):
                pass
        assert obs.validate_event(events[0]) == []


class TestCounters:
    def test_count_accumulates_and_gauge_overwrites(self):
        tracer = Tracer()
        tracer.count("hits")
        tracer.count("hits", 2)
        tracer.gauge("depth", 7)
        tracer.gauge("depth", 3)
        assert tracer.counters() == {"depth": 3, "hits": 3}

    def test_once_unstable_always_unstable(self):
        tracer = Tracer()
        tracer.count("mixed", stable=False)
        tracer.count("mixed", stable=True)
        assert tracer.counters(stable_only=True) == {}
        assert tracer.counters() == {"mixed": 2}

    def test_counter_events_are_schema_valid(self):
        tracer = Tracer()
        tracer.count("a.b", 4, stable=False)
        (event,) = tracer.counter_events()
        assert obs.validate_event(event) == []
        assert event["stable"] is False


class TestCollectAbsorb:
    def test_collect_captures_spans_and_counter_deltas(self):
        tracer = Tracer()
        tracer.count("pre", 10)  # pre-existing total: not a delta
        with tracer.collect() as events:
            with tracer.span("work"):
                tracer.count("pre", 2)
                tracer.count("fresh", 1)
        kinds = [e["type"] for e in events]
        assert kinds.count("span") == 1
        deltas = {e["name"]: e["value"] for e in events
                  if e["type"] == "counter"}
        assert deltas == {"pre": 2, "fresh": 1}

    def test_absorb_merges_stable_and_drops_unstable_counters(self):
        worker = Tracer()
        with worker.collect() as shipped:
            worker.count("tsp.runs", 3)
            worker.count("cache.align.hits", 5, stable=False)
        parent = Tracer()
        parent.absorb(shipped)
        assert parent.counters() == {"tsp.runs": 3}

    def test_absorb_reanchors_orphan_parents(self):
        """A worker's root span carries whatever parent link the worker
        process inherited at fork time; absorb re-points it at the span
        open in the parent right now (the executor's batch span)."""
        worker = Tracer()
        with worker.span("stale-ancestor"):  # inherited pre-fork stack
            with worker.collect() as shipped:
                with worker.span("root"):
                    with worker.span("child"):
                        pass
        parent = Tracer()
        with parent.collect() as merged:
            with parent.span("executor:batch") as batch:
                parent.absorb(shipped)
        by_name = {e["name"]: e for e in merged if e["type"] == "span"}
        assert by_name["root"]["parent_id"] == batch.span_id
        # Intra-batch links survive untouched.
        assert by_name["child"]["parent_id"] == by_name["root"]["span_id"]

    def test_absorb_without_trace_still_merges_counters(self):
        worker = Tracer()
        with worker.collect() as shipped:
            with worker.span("work"):
                worker.count("tsp.kicks", 9)
        parent = Tracer()  # inactive: no sink, no collect
        parent.absorb(shipped)
        assert parent.counters() == {"tsp.kicks": 9}

    def test_absorb_none_is_a_no_op(self):
        parent = Tracer()
        parent.absorb(None)
        parent.absorb([])
        assert parent.counters() == {}


class TestSink:
    def test_trace_file_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer()
        tracer.open_sink(path, label="unit test")
        with tracer.span("work", proc="p"):
            tracer.count("tsp.runs")
        tracer.close_sink()
        events = obs.load_trace(path)
        assert obs.validate_trace_lines(
            path.read_text().splitlines()) == []
        types = [e["type"] for e in events]
        assert types[0] == "meta" and events[0]["label"] == "unit test"
        assert "span" in types and "counter" in types

    def test_open_sink_scopes_counters_to_the_trace(self, tmp_path):
        tracer = Tracer()
        tracer.count("tsp.runs", 99)  # pre-trace activity
        tracer.open_sink(tmp_path / "t.jsonl")
        tracer.count("tsp.runs", 1)
        tracer.close_sink()
        counters = [e for e in obs.load_trace(tmp_path / "t.jsonl")
                    if e["type"] == "counter"]
        assert counters == [
            {"v": obs.SCHEMA_VERSION, "type": "counter",
             "name": "tsp.runs", "value": 1, "stable": True}
        ]

    def test_write_failure_silently_disables_tracing(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer()
        tracer.open_sink(path)
        tracer._sink._fd = -1  # simulate the fd going bad (EBADF)
        with tracer.span("work"):
            pass
        tracer.close_sink()  # must not raise

    def test_start_trace_reads_environment(self, tmp_path, monkeypatch):
        assert obs.start_trace(None) is False
        monkeypatch.setenv(obs.TRACE_ENV, "off")
        assert obs.start_trace(None) is False
        target = tmp_path / "env.jsonl"
        monkeypatch.setenv(obs.TRACE_ENV, str(target))
        assert obs.start_trace(None, label="from env") is True
        obs.finish_trace()
        assert obs.load_trace(target)[0]["label"] == "from env"

    def test_explicit_path_beats_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.TRACE_ENV, str(tmp_path / "env.jsonl"))
        explicit = tmp_path / "explicit.jsonl"
        assert obs.start_trace(explicit) is True
        obs.finish_trace()
        assert explicit.exists()
        assert not (tmp_path / "env.jsonl").exists()


class TestSummarize:
    def test_summary_sections_from_raw_events(self):
        tracer = Tracer()
        with tracer.collect() as events:
            with tracer.span("case", benchmark="com"):
                with tracer.span("tsp_run", start="greedy"):
                    tracer.count("tsp.kicks", 4)
                with tracer.span("tsp_run", start="random"):
                    tracer.count("cache.align.hits", 1, stable=False)
        text = obs.summarize_events(events)
        assert "Per-stage timing (span rollup)" in text
        assert "Span tree" in text
        assert "tsp_run" in text and "case" in text
        assert "tsp.kicks" in text and "stable" in text
        assert "per-process" in text

    def test_summarize_trace_rejects_schema_violations(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"v": 1, "type": "span"}) + "\n")
        with pytest.raises(ValueError, match="schema problem"):
            obs.summarize_trace(path)

    def test_tree_rollup_handles_missing_parents(self):
        rows = obs.span_tree_rollup([
            {"name": "b", "span_id": "x-2", "parent_id": "gone",
             "dur_ms": 1.0},
        ])
        assert rows == [("b", 1, 1.0)]
