"""``repro chaos`` end to end: explore, replay, shrink, corpus gating.

Real explorations are kept tiny (few requests, single-index schedules)
so this stays within integration-test budget; the heavier determinism
guarantees live in ``tests/chaos/test_explorer.py``.
"""

import json

import pytest

from repro.chaos import (
    CorpusEntry,
    FaultSchedule,
    WorkloadConfig,
    load_corpus,
    save_reproducer,
)
from repro.cli import main

TINY = ["--requests", "2", "--shards", "2"]


class TestChaosExplore:
    def test_explore_passes_and_reports_the_space(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            ["chaos", "explore", *TINY,
             "--singles-per-site", "1", "--pairs", "2",
             "--out", str(out)]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "fault space:" in captured.out
        assert "journal_enospc" in captured.out
        assert "0 failing" in captured.out
        report = json.loads(out.read_text())
        assert report["failures"] == []
        assert report["schedules"] >= 10
        assert len(report["space"]) >= 10
        # The canonical witness is embedded for CI artifact diffing.
        canonical = json.loads(report["canonical"])
        assert all(
            all(isinstance(ok, bool) for ok in verdicts.values())
            for verdicts in canonical.values()
        )

    def test_unknown_workload_is_a_usage_error(self):
        assert main(["chaos", "explore", "--workload", "nope"]) == 2


class TestChaosReplay:
    def test_replay_single_schedule(self, capsys):
        code = main(
            ["chaos", "replay", *TINY, "--schedule", "shard_death@1"]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "ok   shard_death@1" in captured.out

    def test_replay_corpus_entries(self, tmp_path, capsys):
        workload = WorkloadConfig(requests=2, shards=2)
        save_reproducer(
            tmp_path, FaultSchedule.of({"journal_enospc": 1}),
            workload=workload, failed=["journal_replayable"],
            note="seeded regression: fixed by torn-tail sealing",
        )
        code = main(["chaos", "replay", "--corpus", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "ok   journal_enospc@1" in captured.out

    def test_replay_without_input_is_a_usage_error(self):
        assert main(["chaos", "replay"]) == 2

    def test_bad_schedule_spelling_is_a_usage_error(self):
        assert main(["chaos", "replay", "--schedule", "garbage"]) == 2


class TestChaosShrink:
    def test_shrink_refuses_a_passing_schedule(self, capsys):
        code = main(
            ["chaos", "shrink", *TINY, "--schedule", "clock_skew@1"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "does not fail" in captured.err


class TestCorpusRoundtrip:
    def test_save_load_idempotent(self, tmp_path):
        schedule = FaultSchedule.of({"journal_enospc": 1, "shard_death": 2})
        workload = WorkloadConfig(requests=3)
        path = save_reproducer(
            tmp_path, schedule, workload=workload,
            failed=["closed_accounting"], note="seeded",
        )
        assert path is not None and path.exists()
        # Idempotent: re-finding the same bug never dirties the tree.
        assert save_reproducer(tmp_path, schedule, workload=workload) is None

        entries = load_corpus(tmp_path)
        assert len(entries) == 1
        entry = entries[0]
        assert entry.schedule == schedule
        assert entry.workload.requests == 3
        assert entry.failed == ["closed_accounting"]
        assert entry.path == str(path)

    def test_malformed_entry_is_loud(self, tmp_path):
        (tmp_path / "bad.json").write_text('{"v": 99}')
        with pytest.raises(ValueError, match="version"):
            load_corpus(tmp_path)

    def test_entry_filenames_are_stable(self, tmp_path):
        from repro.chaos import entry_filename

        schedule = FaultSchedule.of({"journal_enospc": 1})
        assert entry_filename(schedule) == entry_filename(
            FaultSchedule.parse("journal_enospc@1")
        )

    def test_version_roundtrip(self):
        entry = CorpusEntry(
            schedule=FaultSchedule.of({"clock_skew": 1}),
            workload=WorkloadConfig(requests=5),
            failed=["results_match_reference"],
            note="n",
        )
        again = CorpusEntry.from_json(entry.to_json(), path="p")
        assert again.schedule == entry.schedule
        assert again.workload.requests == 5
        assert again.path == "p"
