"""End-to-end integration tests: source text → aligned, timed program.

These exercise the whole public surface on a fresh program, the way the
README quickstart does, plus the semantic-preservation argument: alignment
is a layout decision, so the VM (which runs the CFG, not the layout) and
the evaluator must tell a consistent story across all methods.
"""

import random

import pytest

from repro import (
    ALPHA_21164,
    align_program,
    evaluate_program,
    lower_bound_program,
)
from repro.core import build_alignment_instance, train_predictors
from repro.core.materialize import materialize_program
from repro.lang import compile_source, run_and_profile
from repro.machine.timing import simulate_timing

SOURCE = """
arr histogram[16];
global checksum = 0;

fn mix(x) {
  return (x * 31 + 17) % 97;
}

fn step(v) {
  var m = mix(v);
  histogram[m % 16] = histogram[m % 16] + 1;
  if (m > 48) {
    checksum = checksum + m;
    return 1;
  }
  return 0;
}

fn main() {
  var i = 0;
  var hits = 0;
  while (i < input_len()) {
    hits = hits + step(input(i));
    i = i + 1;
  }
  output(hits);
  output(checksum);
  return hits;
}
"""


@pytest.fixture(scope="module")
def pipeline():
    module = compile_source(SOURCE)
    rng = random.Random(17)
    inputs = [rng.randrange(0, 1000) for _ in range(1500)]
    result, profile = run_and_profile(module, inputs)
    return module, result, profile


class TestEndToEnd:
    def test_full_pipeline_ordering(self, pipeline):
        module, result, profile = pipeline
        program = module.program
        penalties = {}
        cycles = {}
        for method in ("original", "greedy", "cost-greedy", "tsp"):
            layouts = align_program(program, profile, method=method)
            layouts.check_against(program)
            penalties[method] = evaluate_program(
                program, layouts, profile, ALPHA_21164
            ).total
            timing = simulate_timing(
                program, layouts, profile, result.trace.trace, ALPHA_21164
            )
            cycles[method] = timing.total_cycles
        bound = lower_bound_program(program, profile).total

        assert bound <= penalties["tsp"] + 1e-6
        assert penalties["tsp"] <= penalties["greedy"] + 1e-6
        assert penalties["tsp"] <= penalties["cost-greedy"] + 1e-6
        assert penalties["greedy"] <= penalties["original"] + 1e-6
        assert cycles["tsp"] <= cycles["original"]

    def test_matrix_agrees_with_evaluator_on_aligned_layouts(self, pipeline):
        module, _, profile = pipeline
        program = module.program
        layouts = align_program(program, profile, method="tsp")
        for proc in program:
            edge_profile = profile.procedures.get(proc.name)
            if edge_profile is None or edge_profile.total() == 0:
                continue
            instance = build_alignment_instance(
                proc.cfg, edge_profile, ALPHA_21164
            )
            from repro.core import evaluate_layout
            walk = instance.layout_cost(layouts[proc.name])
            penalty = evaluate_layout(
                proc.cfg, layouts[proc.name], edge_profile, ALPHA_21164
            ).total
            assert walk == pytest.approx(penalty)

    def test_materialization_covers_all_blocks(self, pipeline):
        module, _, profile = pipeline
        program = module.program
        layouts = align_program(program, profile, method="tsp")
        predictors = train_predictors(program, profile)
        physical = materialize_program(program, layouts, predictors)
        for proc in program:
            materialized = physical[proc.name]
            sources = {
                b.source for b in materialized.blocks if b.source is not None
            }
            assert sources == set(proc.cfg.block_ids)

    def test_outputs_independent_of_layout_decisions(self, pipeline):
        """Alignment must not change semantics: re-running the VM after
        computing alignments yields identical outputs (the VM executes the
        CFG; layouts only change addresses/penalties)."""
        module, result, profile = pipeline
        rng = random.Random(17)
        inputs = [rng.randrange(0, 1000) for _ in range(1500)]
        rerun, _ = run_and_profile(module, inputs)
        assert rerun.outputs == result.outputs
        assert rerun.returned == result.returned
