"""Tests for the CLI's error handling and resilience flags."""

import pytest

from repro.cli import main
from repro.faults import inject_faults

SOURCE = """
fn main() {
  var i = 0;
  var acc = 0;
  while (i < input_len()) {
    if (input(i) % 2) { acc = acc + 1; }
    i = i + 1;
  }
  output(acc);
  return acc;
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.tl"
    path.write_text(SOURCE)
    return path


class TestUsageErrors:
    def test_bad_inputs_is_a_friendly_usage_error(self, program_file, capsys):
        assert main(["run", str(program_file), "--inputs", "1,two,3"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "integers" in err
        assert "Traceback" not in err

    def test_missing_input_file(self, program_file, capsys):
        assert main([
            "run", str(program_file), "--input-file", "/nonexistent/inputs",
        ]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_unparsable_input_file(self, program_file, tmp_path, capsys):
        bad = tmp_path / "inputs.txt"
        bad.write_text("1 2 banana")
        assert main([
            "run", str(program_file), "--input-file", str(bad),
        ]) == 2
        assert "integers" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, capsys):
        assert main(["suite", "su2.sh", "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_unknown_names_print_clean_messages(self, capsys):
        # UnknownNameError subclasses KeyError, whose __str__ used to turn
        # the report into a useless "error: 'zzz.in'".
        assert main(["suite", "zzz.in"]) == 1
        err = capsys.readouterr().err
        assert "unknown benchmark" in err
        assert main(["suite", "su2.nope"]) == 1
        assert "unknown data set" in capsys.readouterr().err

    def test_genuine_key_errors_propagate(self, monkeypatch):
        # Programming errors must not masquerade as user errors: main() no
        # longer catches bare KeyError.
        import repro.cli as cli

        def buggy(args):
            raise KeyError("oops")

        monkeypatch.setattr(cli, "cmd_suite", buggy)
        with pytest.raises(KeyError):
            cli.main(["suite", "su2.sh"])


class TestSuiteResilience:
    def test_degraded_column_reports_the_rung(self, capsys):
        with inject_faults(solver_timeout=True):
            assert main(["suite", "su2.sh"]) == 0
        out = capsys.readouterr().out
        assert "degraded" in out
        assert "construction" in out
        assert "warning:" in out

    def test_clean_run_shows_no_degradation(self, capsys):
        assert main(["suite", "su2.sh"]) == 0
        out = capsys.readouterr().out
        assert "degraded" in out
        assert "construction" not in out

    def test_budget_flag_degrades_gracefully(self, capsys):
        assert main(["suite", "su2.sh", "--budget-ms", "0.000001"]) == 0
        out = capsys.readouterr().out
        assert "su2.sh" in out

    def test_multiple_cases_in_one_run(self, capsys):
        assert main(["suite", "su2.sh", "su2.re"]) == 0
        out = capsys.readouterr().out
        assert "su2.sh" in out and "su2.re" in out

    def test_checkpoint_and_resume(self, tmp_path, capsys):
        ck = tmp_path / "ck.jsonl"
        assert main(["suite", "su2.sh", "--checkpoint", str(ck)]) == 0
        assert "1 computed" in capsys.readouterr().out
        assert ck.exists()
        assert main([
            "suite", "su2.sh", "--checkpoint", str(ck), "--resume",
        ]) == 0
        assert "1 case(s) resumed, 0 computed" in capsys.readouterr().out


class TestCFGValidation:
    def test_invalid_cfg_is_a_usage_error_naming_the_procedure(
        self, program_file, monkeypatch, capsys
    ):
        from repro.cfg import CFGError
        import repro.cli as cli

        def broken(program):
            raise CFGError("procedure 'main': entry block has no path to exit")

        monkeypatch.setattr(cli, "validate_program", broken)
        assert main(["align", str(program_file)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: invalid control-flow graph")
        assert "'main'" in err
        assert "Traceback" not in err

    def test_compile_validates_too(self, program_file, monkeypatch, capsys):
        from repro.cfg import CFGError
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "validate_program",
            lambda program: (_ for _ in ()).throw(
                CFGError("procedure 'main': dangling edge")
            ),
        )
        assert main(["compile", str(program_file)]) == 2
        assert "'main'" in capsys.readouterr().err


class TestSupervisionFlags:
    @pytest.fixture(autouse=True)
    def _reset_store(self):
        from repro.pipeline.artifacts import reset_default_store

        yield
        reset_default_store()

    def test_invalid_retries_rejected(self, program_file, capsys):
        assert main(["align", str(program_file), "--retries", "-1"]) == 2
        assert "--retries" in capsys.readouterr().err

    def test_invalid_task_timeout_rejected(self, program_file, capsys):
        assert main([
            "align", str(program_file), "--task-timeout-ms", "0",
        ]) == 2
        assert "--task-timeout-ms" in capsys.readouterr().err

    def test_align_with_store_persists_artifacts(
        self, program_file, tmp_path, capsys
    ):
        store_dir = tmp_path / "store"
        argv = [
            "align", str(program_file), "--inputs", "1,2,3,4",
            "--method", "tsp", "--store", str(store_dir), "--retries", "1",
        ]
        assert main(argv) == 0
        entries = list(store_dir.rglob("*.art"))
        assert entries, "the on-disk store should hold alignment artifacts"
        # A second run against the same store is served from it.
        assert main(argv) == 0
        assert capsys.readouterr().out

    def test_suite_reports_retried_and_quarantined_columns(
        self, tmp_path, capsys
    ):
        assert main([
            "suite", "com.in", "--retries", "2",
            "--store", str(tmp_path / "store"),
        ]) == 0
        out = capsys.readouterr().out
        assert "retried" in out
        assert "quarantined" in out

    def test_store_off_disables_persistence(self, program_file, capsys):
        from repro.pipeline.artifacts import default_store

        assert main([
            "align", str(program_file), "--inputs", "1,2",
            "--method", "greedy", "--store", "off",
        ]) == 0
        assert default_store() is None
