"""Tests for the command-line interface (driven in-process)."""

import json
import pathlib

import pytest

from repro.cli import main

SOURCE = """
fn main() {
  var i = 0;
  var acc = 0;
  while (i < input_len()) {
    if (input(i) % 2) { acc = acc + 1; }
    i = i + 1;
  }
  output(acc);
  return acc;
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.tl"
    path.write_text(SOURCE)
    return path


class TestCompile:
    def test_compile_reports_procedures(self, program_file, capsys):
        assert main(["compile", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "main" in out
        assert "blocks" in out

    def test_compile_dot_export(self, program_file, tmp_path, capsys):
        dot_dir = tmp_path / "dots"
        assert main(["compile", str(program_file), "--dot", str(dot_dir)]) == 0
        assert (dot_dir / "main.dot").exists()
        assert "digraph" in (dot_dir / "main.dot").read_text()

    def test_compile_simplify_flag(self, program_file, capsys):
        assert main(["compile", str(program_file), "--simplify"]) == 0

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.tl"
        bad.write_text("fn main() { return nope; }")
        assert main(["compile", str(bad)]) == 1
        assert "undefined variable" in capsys.readouterr().err


class TestRun:
    def test_run_with_inline_inputs(self, program_file, capsys):
        assert main(["run", str(program_file), "--inputs", "1,2,3,4,5"]) == 0
        out = capsys.readouterr().out
        assert "returned: 3" in out

    def test_run_with_input_file_and_profile_out(
        self, program_file, tmp_path, capsys
    ):
        input_file = tmp_path / "in.txt"
        input_file.write_text(" ".join(str(i) for i in range(100)))
        profile_out = tmp_path / "profile.json"
        assert main([
            "run", str(program_file),
            "--input-file", str(input_file),
            "--profile-out", str(profile_out),
        ]) == 0
        payload = json.loads(profile_out.read_text())
        assert "procedures" in payload and "main" in payload["procedures"]


class TestAlign:
    def test_align_all_methods_with_bound(self, program_file, capsys):
        assert main([
            "align", str(program_file),
            "--inputs", ",".join(str(i % 7) for i in range(300)),
            "--bound",
        ]) == 0
        out = capsys.readouterr().out
        for needle in ("original", "greedy", "tsp", "(lower bound)"):
            assert needle in out

    def test_align_from_saved_profile(self, program_file, tmp_path, capsys):
        input_file = tmp_path / "in.txt"
        input_file.write_text(" ".join(str(i) for i in range(200)))
        profile_path = tmp_path / "p.json"
        main([
            "run", str(program_file),
            "--input-file", str(input_file),
            "--profile-out", str(profile_path),
        ])
        capsys.readouterr()
        assert main([
            "align", str(program_file),
            "--profile", str(profile_path),
            "--method", "tsp",
        ]) == 0
        assert "tsp" in capsys.readouterr().out

    def test_align_cross_profile(self, program_file, tmp_path, capsys):
        train = tmp_path / "train.json"
        test = tmp_path / "test.json"
        for path, stride in ((train, 2), (test, 3)):
            main([
                "run", str(program_file),
                "--inputs", ",".join(str(i * stride) for i in range(150)),
                "--profile-out", str(path),
            ])
        capsys.readouterr()
        assert main([
            "align", str(program_file),
            "--profile", str(train),
            "--cross-profile", str(test),
            "--method", "greedy",
        ]) == 0
        assert "cross-validated" in capsys.readouterr().out

    def test_align_custom_model(self, program_file, capsys):
        assert main([
            "align", str(program_file),
            "--inputs", "1,2,3,4,5,6,7,8",
            "--model", "deep-pipe",
            "--method", "tsp",
        ]) == 0
        assert "deep-pipe" in capsys.readouterr().out


class TestSuite:
    def test_suite_case(self, capsys):
        assert main(["suite", "su2.sh"]) == 0
        out = capsys.readouterr().out
        assert "su2.sh" in out
        assert "(lower bound)" in out

    def test_suite_cross_trained(self, capsys):
        assert main(["suite", "su2.sh", "--train", "re"]) == 0
        out = capsys.readouterr().out
        assert "trained on re" in out

    def test_suite_bad_case_format(self, capsys):
        assert main(["suite", "nodots"]) == 2

    def test_suite_unknown_benchmark(self, capsys):
        assert main(["suite", "zzz.in"]) == 1
