"""Tests for Karp patching and the branch-and-bound exact solver."""

import numpy as np
import pytest

from repro.tsp import (
    branch_and_bound,
    check_tour,
    exact_tour,
    patched_tour,
    tour_cost,
)


def random_matrix(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.uniform(1, 100, size=(n, n))
    np.fill_diagonal(m, 0)
    return m


class TestPatching:
    def test_valid_tour(self):
        m = random_matrix(15, 0)
        tour, cost = patched_tour(m)
        check_tour(tour, 15)
        assert cost == pytest.approx(tour_cost(m, tour))

    def test_above_optimum(self):
        for seed in range(6):
            m = random_matrix(9, seed)
            _, optimal = exact_tour(m)
            _, cost = patched_tour(m)
            assert cost >= optimal - 1e-9

    def test_strong_on_random_asymmetric(self):
        """Random ATSP instances have AP ≈ OPT; patching should be within
        a few percent (the appendix's observation about such instances)."""
        gaps = []
        for seed in range(6):
            m = random_matrix(11, seed + 50)
            _, optimal = exact_tour(m)
            _, cost = patched_tour(m)
            gaps.append((cost - optimal) / optimal)
        assert sum(gaps) / len(gaps) < 0.10


class TestBranchAndBound:
    def test_matches_dp_exact(self):
        for seed in range(8):
            m = random_matrix(9, seed)
            _, optimal = exact_tour(m)
            result = branch_and_bound(m, seed=seed)
            assert result.optimal
            assert result.cost == pytest.approx(optimal)
            check_tour(result.tour, 9)

    def test_handles_structured_instances(self, loop_cfg, loop_profile):
        from repro.core import build_alignment_instance
        from repro.machine import ALPHA_21164

        instance = build_alignment_instance(
            loop_cfg, loop_profile["main"], ALPHA_21164
        )
        result = branch_and_bound(instance.matrix)
        assert result.optimal
        # Sanity: within the anchored feasible region.
        assert result.cost < instance.big

    def test_node_budget_degrades_gracefully(self):
        m = random_matrix(14, 3)
        result = branch_and_bound(m, max_nodes=1)
        assert not result.optimal or result.nodes <= 1
        # Even without optimality, a valid incumbent tour is returned.
        check_tour(result.tour, 14)
        assert result.cost == pytest.approx(tour_cost(m, result.tour))

    def test_initial_tour_used_as_incumbent(self):
        m = random_matrix(8, 4)
        _, optimal = exact_tour(m)
        result = branch_and_bound(m, initial_tour=list(range(8)))
        assert result.optimal
        assert result.cost == pytest.approx(optimal)
