"""Tests for the directed 3-opt local search."""

import random

import numpy as np
import pytest

from repro.tsp import ThreeOptSearch, check_tour, three_opt, tour_cost
from repro.tsp.exact import exact_tour


def random_matrix(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.uniform(1, 100, size=(n, n))
    np.fill_diagonal(m, 0)
    return m


class TestThreeOpt:
    def test_returns_valid_tour(self):
        m = random_matrix(15, 0)
        tour, cost = three_opt(m, list(range(15)))
        check_tour(tour, 15)
        assert cost == pytest.approx(tour_cost(m, tour))

    def test_never_worsens(self):
        for seed in range(5):
            m = random_matrix(12, seed)
            start = list(range(12))
            random.Random(seed).shuffle(start)
            before = tour_cost(m, start)
            _, after = three_opt(m, start)
            assert after <= before + 1e-9

    def test_tiny_instances_passthrough(self):
        m = random_matrix(3, 1)
        tour, _ = three_opt(m, [2, 0, 1])
        assert sorted(tour) == [0, 1, 2]

    def test_local_optimum_is_stable(self):
        m = random_matrix(12, 3)
        search = ThreeOptSearch(m)
        tour, stats1 = search.optimize(list(range(12)))
        again, stats2 = search.optimize(tour)
        assert tour_cost(m, again) == pytest.approx(tour_cost(m, tour))
        assert stats2.moves == 0

    def test_close_to_exact_on_small_instances(self):
        """Single-descent 3-opt from identity lands within 15% of optimal
        on small random asymmetric instances (iterated closes the rest)."""
        gaps = []
        for seed in range(10):
            m = random_matrix(10, seed + 10)
            _, optimal = exact_tour(m)
            _, found = three_opt(m, list(range(10)))
            gaps.append((found - optimal) / optimal)
        assert sum(gaps) / len(gaps) < 0.15

    def test_respects_forbidden_edges(self):
        """BIG edges (anchoring) are avoided when a feasible tour exists."""
        n = 8
        m = random_matrix(n, 5)
        big = 1e9
        # Forbid everything into city 0 except from city n-1.
        m[:, 0] = big
        m[n - 1, 0] = 0.0
        start = list(range(n))
        tour, cost = three_opt(m, start)
        assert cost < big

    def test_stats_counted(self):
        m = random_matrix(20, 6)
        search = ThreeOptSearch(m)
        start = list(range(20))
        random.Random(1).shuffle(start)
        _, stats = search.optimize(start)
        assert stats.moves > 0
        assert stats.scans > 0
