"""Tests for the solve facade and effort presets."""

import numpy as np
import pytest

from repro.tsp import (
    DEFAULT,
    EFFORTS,
    PAPER,
    QUICK,
    check_tour,
    exact_tour,
    get_effort,
    solution_gap,
    solve_dtsp,
)


def random_matrix(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.uniform(1, 100, size=(n, n))
    np.fill_diagonal(m, 0)
    return m


class TestEfforts:
    def test_presets_registered(self):
        assert set(EFFORTS) == {"quick", "default", "paper"}
        assert get_effort("paper") is PAPER
        assert get_effort(DEFAULT) is DEFAULT

    def test_unknown_effort(self):
        with pytest.raises(KeyError, match="unknown effort"):
            get_effort("heroic")

    def test_paper_preset_matches_appendix(self):
        """10 runs: 5 greedy, 4 NN, 1 compiler order; 2N iterations."""
        assert len(PAPER.starts) == 10
        assert PAPER.starts.count("greedy") == 5
        assert PAPER.starts.count("nn") == 4
        assert PAPER.starts.count("identity") == 1
        assert PAPER.iterations is None  # None means 2N


class TestSolve:
    def test_small_instances_solved_exactly(self):
        m = random_matrix(8, 0)
        _, optimal = exact_tour(m)
        result = solve_dtsp(m)
        assert result.cost == pytest.approx(optimal)
        assert result.runs[0].start_kind == "exact"

    def test_large_instances_use_heuristic(self):
        m = random_matrix(30, 1)
        result = solve_dtsp(m, effort="quick", seed=0)
        check_tour(result.tour, 30)
        assert result.runs[0].start_kind != "exact"

    def test_higher_effort_never_worse(self):
        m = random_matrix(30, 2)
        quick = solve_dtsp(m, effort=QUICK, seed=0).cost
        default = solve_dtsp(m, effort=DEFAULT, seed=0).cost
        assert default <= quick + 1e-9


class TestSolutionGap:
    def test_gap_computation(self):
        assert solution_gap(110.0, 100.0) == pytest.approx(0.10)
        assert solution_gap(0.0, 0.0) == 0.0
        assert solution_gap(5.0, 0.0) == float("inf")
