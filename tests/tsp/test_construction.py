"""Tests for tour construction heuristics."""

import random

import numpy as np
import pytest

from repro.tsp import (
    check_tour,
    greedy_edge_tour,
    identity_tour,
    nearest_neighbor_tour,
    tour_cost,
)


@pytest.fixture
def matrix():
    rng = np.random.default_rng(1)
    m = rng.uniform(1, 100, size=(20, 20))
    np.fill_diagonal(m, 0)
    return m


class TestNearestNeighbor:
    def test_valid_tour(self, matrix):
        tour = nearest_neighbor_tour(matrix, random.Random(0))
        check_tour(tour, 20)

    def test_fixed_start(self, matrix):
        tour = nearest_neighbor_tour(matrix, random.Random(0), start=7)
        assert tour[0] == 7

    def test_deterministic_without_randomization(self, matrix):
        a = nearest_neighbor_tour(matrix, random.Random(0), start=0, candidates=1)
        b = nearest_neighbor_tour(matrix, random.Random(9), start=0, candidates=1)
        assert a == b

    def test_randomized_candidates_vary(self, matrix):
        tours = {
            tuple(nearest_neighbor_tour(matrix, random.Random(s), start=0,
                                        candidates=3))
            for s in range(8)
        }
        assert len(tours) > 1

    def test_greedy_choice_on_tiny_instance(self):
        m = np.array([[0, 1, 9], [9, 0, 1], [1, 9, 0]], dtype=float)
        tour = nearest_neighbor_tour(m, random.Random(0), start=0)
        assert tour == [0, 1, 2]


class TestGreedyEdge:
    def test_valid_tour(self, matrix):
        tour = greedy_edge_tour(matrix, random.Random(0))
        check_tour(tour, 20)

    def test_jitter_varies_tours(self, matrix):
        tours = {
            tuple(greedy_edge_tour(matrix, random.Random(s), jitter=0.3))
            for s in range(8)
        }
        assert len(tours) > 1

    def test_usually_beats_random_order(self, matrix):
        rng = random.Random(0)
        greedy_cost = tour_cost(matrix, greedy_edge_tour(matrix, rng))
        identity_cost = tour_cost(matrix, identity_tour(20))
        assert greedy_cost < identity_cost


class TestIdentity:
    def test_identity(self):
        assert identity_tour(4) == [0, 1, 2, 3]
