"""Tests for the exact solvers (bitmask DP and Hamiltonian paths)."""

import itertools

import numpy as np
import pytest

from repro.tsp import TSPError, exact_path, exact_tour, path_cost, tour_cost


def brute_force_tour(matrix):
    n = matrix.shape[0]
    best = None
    best_cost = float("inf")
    for perm in itertools.permutations(range(1, n)):
        tour = [0, *perm]
        cost = tour_cost(matrix, tour)
        if cost < best_cost:
            best, best_cost = tour, cost
    return best, best_cost


class TestExactTour:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(3)
        for _ in range(8):
            n = int(rng.integers(4, 8))
            m = rng.uniform(1, 50, size=(n, n))
            np.fill_diagonal(m, 0)
            _, expected = brute_force_tour(m)
            tour, cost = exact_tour(m)
            assert cost == pytest.approx(expected)
            assert cost == pytest.approx(tour_cost(m, tour))

    def test_two_cities(self):
        m = np.array([[0.0, 3.0], [4.0, 0.0]])
        tour, cost = exact_tour(m)
        assert cost == 7.0

    def test_size_limit(self):
        with pytest.raises(TSPError, match="limited"):
            exact_tour(np.zeros((20, 20)))

    def test_asymmetry_respected(self):
        # Cheap one way around the ring, expensive the other.
        n = 6
        m = np.full((n, n), 50.0)
        np.fill_diagonal(m, 0)
        for i in range(n):
            m[i, (i + 1) % n] = 1.0
        tour, cost = exact_tour(m)
        assert cost == pytest.approx(n * 1.0)


class TestExactPath:
    def test_path_endpoints_respected(self):
        rng = np.random.default_rng(5)
        m = rng.uniform(1, 50, size=(6, 6))
        np.fill_diagonal(m, 0)
        path, cost = exact_path(m, start=2, end=4)
        assert path[0] == 2 and path[-1] == 4
        assert sorted(path) == list(range(6))
        assert cost == pytest.approx(path_cost(m, path))

    def test_path_optimality_by_brute_force(self):
        rng = np.random.default_rng(6)
        m = rng.uniform(1, 50, size=(6, 6))
        np.fill_diagonal(m, 0)
        _, cost = exact_path(m, start=0, end=5)
        middles = [c for c in range(6) if c not in (0, 5)]
        best = min(
            path_cost(m, [0, *perm, 5])
            for perm in itertools.permutations(middles)
        )
        assert cost == pytest.approx(best)

    def test_bad_endpoints(self):
        m = np.zeros((4, 4))
        with pytest.raises(TSPError):
            exact_path(m, 0, 0)
        with pytest.raises(TSPError):
            exact_path(m, 0, 9)
