"""Tests for the directed Or-opt local search."""

import random

import numpy as np
import pytest

from repro.tsp import check_tour, exact_tour, three_opt, tour_cost
from repro.tsp.or_opt import or_opt


def random_matrix(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.uniform(1, 100, size=(n, n))
    np.fill_diagonal(m, 0)
    return m


class TestOrOpt:
    def test_valid_tour_and_cost(self):
        m = random_matrix(15, 0)
        tour, cost = or_opt(m, list(range(15)))
        check_tour(tour, 15)
        assert cost == pytest.approx(tour_cost(m, tour))

    def test_never_worsens(self):
        for seed in range(6):
            m = random_matrix(12, seed)
            start = list(range(12))
            random.Random(seed).shuffle(start)
            before = tour_cost(m, start)
            _, after = or_opt(m, start)
            assert after <= before + 1e-9

    def test_three_opt_polishes_or_opt_optima(self):
        """Or-opt is a restriction of directed 3-opt, so running 3-opt
        after Or-opt can only improve (or keep) the tour — while individual
        first-improvement descents from the same start may diverge either
        way."""
        for seed in range(8):
            m = random_matrix(14, seed + 20)
            tour, or_cost = or_opt(m, list(range(14)))
            _, polished = three_opt(m, tour)
            assert polished <= or_cost + 1e-9

    def test_finds_obvious_relocation(self):
        """A city parked in the wrong place gets moved next to its
        natural neighbors."""
        n = 8
        m = np.full((n, n), 50.0)
        np.fill_diagonal(m, 0)
        for i in range(n):
            m[i, (i + 1) % n] = 1.0   # cheap ring 0->1->...->n-1->0
        # Start with city 5 yanked out of place.
        start = [0, 5, 1, 2, 3, 4, 6, 7]
        tour, cost = or_opt(m, start)
        assert cost == pytest.approx(n * 1.0)

    def test_tiny_instances_passthrough(self):
        m = random_matrix(3, 3)
        tour, _ = or_opt(m, [2, 0, 1])
        assert sorted(tour) == [0, 1, 2]

    def test_respects_big_edges(self):
        m = random_matrix(10, 4)
        big = 1e9
        m[:, 0] = big
        m[9, 0] = 0.0
        tour, cost = or_opt(m, list(range(10)))
        assert cost < big

    def test_local_optimum_stable(self):
        m = random_matrix(12, 5)
        tour, cost = or_opt(m, list(range(12)))
        again, cost2 = or_opt(m, tour)
        assert cost2 == pytest.approx(cost)

    def test_gap_to_optimum_reasonable(self):
        gaps = []
        for seed in range(8):
            m = random_matrix(9, seed + 40)
            _, optimal = exact_tour(m)
            _, found = or_opt(m, list(range(9)))
            gaps.append((found - optimal) / optimal)
        assert sum(gaps) / len(gaps) < 0.30
