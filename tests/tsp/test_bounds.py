"""Tests for the lower bounds: Held–Karp and assignment."""

import numpy as np
import pytest

from repro.tsp import (
    assignment_bound,
    assignment_cycle_cover,
    exact_tour,
    held_karp_bound_directed,
    held_karp_bound_symmetric,
    minimum_one_tree,
    resolve_assignment_backend,
    solve_assignment,
)


def random_matrix(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.uniform(1, 100, size=(n, n))
    np.fill_diagonal(m, 0)
    return m


class TestOneTree:
    def test_degrees_sum_to_edges(self):
        m = random_matrix(8, 0)
        sym = (m + m.T) / 2
        cost, degrees = minimum_one_tree(sym)
        # A 1-tree on n nodes has exactly n edges -> degree sum 2n.
        assert degrees.sum() == 2 * 8
        assert degrees[0] == 2
        assert cost > 0

    def test_cycle_graph_one_tree_is_the_cycle(self):
        n = 6
        m = np.full((n, n), 100.0)
        for i in range(n):
            m[i, (i + 1) % n] = m[(i + 1) % n, i] = 1.0
        np.fill_diagonal(m, 0)
        cost, degrees = minimum_one_tree(m)
        assert cost == pytest.approx(n * 1.0)
        assert (degrees == 2).all()


class TestHeldKarp:
    def test_bound_below_optimum_directed(self):
        for seed in range(8):
            m = random_matrix(8, seed)
            _, optimal = exact_tour(m)
            result = held_karp_bound_directed(m, tour_upper_bound=optimal)
            assert result.bound <= optimal + 1e-6

    def test_bound_nonnegative(self):
        m = random_matrix(6, 1)
        result = held_karp_bound_directed(m, tour_upper_bound=100.0)
        assert result.bound >= 0

    def test_symmetric_euclidean_tightness(self):
        """On symmetric metric instances HK is famously tight (≈1%)."""
        rng = np.random.default_rng(7)
        points = rng.uniform(0, 1, size=(14, 2))
        m = np.sqrt(
            ((points[:, None, :] - points[None, :, :]) ** 2).sum(-1)
        )
        _, optimal = exact_tour(m)
        result = held_karp_bound_symmetric(m, upper_bound=optimal)
        assert result.bound <= optimal + 1e-6
        assert result.bound >= 0.95 * optimal

    def test_converges_on_ring(self):
        """A pure cycle instance: the 1-tree becomes the tour itself."""
        n = 8
        m = np.full((n, n), 500.0)
        for i in range(n):
            m[i, (i + 1) % n] = m[(i + 1) % n, i] = 1.0
        np.fill_diagonal(m, 0)
        result = held_karp_bound_symmetric(m, upper_bound=float(n))
        assert result.bound == pytest.approx(n, abs=1e-6)
        assert result.converged_to_tour


class TestAssignment:
    def test_matches_scipy(self):
        from scipy.optimize import linear_sum_assignment

        for seed in range(6):
            m = random_matrix(12, seed)
            match, total = solve_assignment(m)
            rows, cols = linear_sum_assignment(m)
            expected = m[rows, cols].sum()
            assert total == pytest.approx(expected)
            assert sorted(match) == list(range(12))

    def test_ap_bound_below_optimum(self):
        for seed in range(6):
            m = random_matrix(8, seed)
            _, optimal = exact_tour(m)
            assert assignment_bound(m) <= optimal + 1e-6

    def test_cycle_cover_structure(self):
        m = random_matrix(10, 3)
        cover = assignment_cycle_cover(m)
        cycles = cover.cycles()
        assert sum(len(c) for c in cycles) == 10
        assert cover.is_tour == (len(cycles) == 1)
        # No self-loops: the diagonal is forbidden.
        assert all(cover.successor[i] != i for i in range(10))

    def test_identity_matrix_assignment(self):
        m = np.full((4, 4), 10.0)
        for i in range(4):
            m[i, (i + 1) % 4] = 1.0
        match, total = solve_assignment(m)
        assert total == pytest.approx(4.0)


class TestAssignmentBackends:
    def test_resolution(self):
        from repro.tsp.assignment import _scipy_assignment

        assert resolve_assignment_backend("pure") == "pure"
        expected = "scipy" if _scipy_assignment is not None else "pure"
        assert resolve_assignment_backend() == expected
        assert resolve_assignment_backend("auto") == expected

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="assignment backend"):
            solve_assignment(random_matrix(5, 0), backend="gpu")

    def test_backends_agree_on_the_optimal_total(self):
        pytest.importorskip("scipy")
        for n in (2, 3, 6, 15, 40):
            for seed in (0, 1):
                m = random_matrix(n, seed)
                match_pure, total_pure = solve_assignment(m, backend="pure")
                match_sp, total_sp = solve_assignment(m, backend="scipy")
                assert total_sp == pytest.approx(total_pure)
                # Both are true matchings achieving their reported totals.
                for match in (match_pure, match_sp):
                    assert sorted(match.tolist()) == list(range(n))
                assert m[np.arange(n), match_sp].sum() == pytest.approx(
                    total_sp
                )

    def test_cycle_cover_pure_backend_is_environment_invariant(self):
        """The pure matching (what patching consumes) is a deterministic
        function of the matrix alone."""
        m = random_matrix(12, 3)
        a = assignment_cycle_cover(m, backend="pure")
        b = assignment_cycle_cover(m, backend="pure")
        assert a.successor.tolist() == b.successor.tolist()
        assert a.cost == b.cost

    def test_scipy_backend_explicitly_requested_without_scipy(self):
        from repro.tsp import assignment as mod

        original = mod._scipy_assignment
        mod._scipy_assignment = None
        try:
            assert resolve_assignment_backend() == "pure"
            with pytest.raises(KeyError, match="not installed"):
                resolve_assignment_backend("scipy")
        finally:
            mod._scipy_assignment = original
