"""Tests for iterated 3-opt and the double-bridge kick."""

import random

import numpy as np
import pytest

from repro.tsp import (
    check_tour,
    double_bridge,
    iterated_three_opt,
    three_opt,
    tour_cost,
)
from repro.tsp.exact import exact_tour


def random_matrix(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.uniform(1, 100, size=(n, n))
    np.fill_diagonal(m, 0)
    return m


class TestDoubleBridge:
    def test_permutation_preserved(self):
        rng = random.Random(0)
        tour = list(range(20))
        kicked = double_bridge(tour, rng)
        assert sorted(kicked) == tour
        assert kicked != tour

    def test_segments_keep_orientation(self):
        """Every consecutive pair inside a segment survives the kick."""
        rng = random.Random(3)
        tour = list(range(30))
        kicked = double_bridge(tour, rng)
        pairs_before = {(a, b) for a, b in zip(tour, tour[1:])}
        pairs_after = {(a, b) for a, b in zip(kicked, kicked[1:])}
        # A double bridge breaks exactly 3 interior adjacencies (plus the
        # wraparound), so most pairs survive *in order* — no reversals.
        assert len(pairs_before & pairs_after) >= len(tour) - 5
        reversed_pairs = {(b, a) for a, b in pairs_before}
        assert not (pairs_after - pairs_before) & reversed_pairs

    def test_tiny_tours_swapped(self):
        rng = random.Random(1)
        kicked = double_bridge([0, 1, 2, 3], rng)
        assert sorted(kicked) == [0, 1, 2, 3]


class TestIteratedThreeOpt:
    def test_matches_exact_on_small_instances(self):
        found_optimal = 0
        for seed in range(10):
            m = random_matrix(9, seed)
            _, optimal = exact_tour(m)
            result = iterated_three_opt(m, seed=seed)
            assert result.cost >= optimal - 1e-9
            if result.cost <= optimal + 1e-6:
                found_optimal += 1
        assert found_optimal >= 9

    def test_improves_on_single_descent(self):
        m = random_matrix(40, 2)
        single = three_opt(m, list(range(40)))[1]
        iterated = iterated_three_opt(m, seed=0).cost
        assert iterated <= single + 1e-9

    def test_run_results_recorded(self):
        m = random_matrix(12, 4)
        result = iterated_three_opt(
            m, starts=("greedy", "nn", "identity", "patch"), seed=0
        )
        assert len(result.runs) == 4
        assert {r.start_kind for r in result.runs} == {
            "greedy", "nn", "identity", "patch",
        }
        assert 1 <= result.runs_finding_best <= 4
        check_tour(result.tour, 12)
        assert result.cost == pytest.approx(tour_cost(m, result.tour))

    def test_unknown_start_rejected(self):
        m = random_matrix(8, 5)
        with pytest.raises(ValueError, match="unknown start"):
            iterated_three_opt(m, starts=("bogus",))

    def test_deterministic_for_seed(self):
        m = random_matrix(15, 6)
        a = iterated_three_opt(m, seed=42)
        b = iterated_three_opt(m, seed=42)
        assert a.cost == b.cost
        assert a.tour == b.tour
