"""Tests for the flat-array solver kernel.

Three contracts matter:

* the kernel's 3-opt descent is *bit-identical* to the legacy
  :class:`~repro.tsp.local_search.ThreeOptSearch` (same tour, not just the
  same cost) — the guarded mode's dominance guarantee rests on it;
* guarded-mode iterated solves never cost more than the legacy solver for
  the same effort and seed (the equivalence grid);
* the delta-tracked cost is always exact, including mid-descent when a
  budget expires.
"""

import numpy as np
import pytest

from repro import obs
from repro.budget import Budget
from repro.errors import SolverBudgetExceeded, UnknownNameError
from repro.tsp import (
    KERNEL_MODES,
    SOLVER_ENGINES,
    KernelStats,
    SolverKernel,
    iterated_three_opt,
    kernel_iterated_three_opt,
    resolve_solver_engine,
    solve_dtsp,
    tour_cost,
)
from repro.tsp.local_search import ThreeOptSearch


def random_matrix(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.uniform(1, 100, size=(n, n))
    np.fill_diagonal(m, 0)
    return m


class TestDescentEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("n", [5, 12, 30, 47])
    def test_descent_matches_legacy_three_opt_exactly(self, n, seed):
        """With or-opt off and a full wake, the kernel's descent replays
        the legacy scan order move for move: identical final tours."""
        m = random_matrix(n, seed)
        rng = np.random.default_rng(seed + 1000)
        start = [int(c) for c in rng.permutation(n)]
        legacy_tour, _ = ThreeOptSearch(m, neighbors=8).optimize(start)
        kernel = SolverKernel(m, neighbors=8)
        state = kernel.state_from(start)
        kernel.descend(state, or_opt=False)
        assert state.tour.tolist() == legacy_tour
        assert state.cost == pytest.approx(tour_cost(m, legacy_tour))

    def test_delta_cost_stays_exact_through_kicks(self):
        import random as pyrandom

        m = random_matrix(25, 9)
        kernel = SolverKernel(m, neighbors=8)
        state = kernel.state_from(list(range(25)))
        rng = pyrandom.Random(4)
        for _ in range(10):
            kernel.kick(state, rng)
            kernel.descend(state)
            assert sorted(state.tour.tolist()) == list(range(25))
            assert state.cost == pytest.approx(
                tour_cost(m, state.tour.tolist())
            )


class TestGuardedDominance:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_kernel_never_worse_than_legacy_on_size_grid(self, seed):
        """The ISSUE's equivalence grid: for every instance size, guarded
        kernel cost <= legacy cost under identical effort and seed."""
        for n in range(4, 61, 7):
            m = random_matrix(n, seed)
            legacy = solve_dtsp(m, effort="quick", seed=seed, engine="legacy")
            guarded = solve_dtsp(
                m, effort="quick", seed=seed, engine="guarded"
            )
            assert guarded.cost <= legacy.cost + 1e-9, (n, seed)
            assert guarded.cost == pytest.approx(
                tour_cost(m, guarded.tour)
            )

    def test_run_results_keep_legacy_shape(self):
        m = random_matrix(30, 5)
        result = kernel_iterated_three_opt(
            m, starts=("greedy", "identity"), iterations=10,
            neighbors=8, seed=0,
        )
        assert len(result.runs) == 2
        assert [r.start_kind for r in result.runs] == ["greedy", "identity"]
        assert all(r.iterations == 10 for r in result.runs)
        assert result.cost == pytest.approx(min(r.cost for r in result.runs))


class TestOrOpt:
    def test_or_opt_fires_and_counts(self):
        """A pinned instance where the 3-opt local optimum still admits a
        segment relocation: the or-opt fold must find it, improve the
        tour, and bump both the stats field and the stable counter."""
        m = random_matrix(40, 11)
        kernel = SolverKernel(m, neighbors=8)
        state = kernel.state_from(list(range(40)))
        kernel.descend(state, or_opt=False)
        three_opt_optimum = state.cost
        kernel.wake_all(state)
        stats = KernelStats()
        before = obs.counters().get("tsp.or_opt_moves", 0)
        kernel.descend(state, stats=stats, or_opt=True)
        assert stats.or_opt_moves > 0
        assert obs.counters().get("tsp.or_opt_moves", 0) - before == (
            stats.or_opt_moves
        )
        assert state.cost < three_opt_optimum - 1e-9
        assert state.cost == pytest.approx(tour_cost(m, state.tour.tolist()))

    def test_guarded_polish_never_hurts(self):
        """Guarded mode's end-of-run or-opt polish only ever lowers cost,
        so it stays dominant over the or-opt-less legacy trajectory."""
        for seed in range(3):
            m = random_matrix(35, seed)
            guarded = kernel_iterated_three_opt(
                m, starts=("identity",), iterations=20, neighbors=8,
                seed=seed, mode="guarded",
            )
            legacy = iterated_three_opt(
                m, starts=("identity",), iterations=20, neighbors=8,
                seed=seed,
            )
            assert guarded.cost <= legacy.cost + 1e-9


class TestTurboMode:
    def test_turbo_produces_valid_tours(self):
        m = random_matrix(40, 3)
        result = kernel_iterated_three_opt(
            m, starts=("greedy", "identity"), iterations=30, neighbors=8,
            seed=1, mode="turbo",
        )
        assert sorted(result.tour) == list(range(40))
        assert result.cost == pytest.approx(tour_cost(m, result.tour))

    def test_unknown_mode_rejected(self):
        with pytest.raises(UnknownNameError):
            kernel_iterated_three_opt(
                random_matrix(20, 0), starts=("identity",), iterations=1,
                neighbors=8, seed=0, mode="warp",
            )


class TestBudgetSalvage:
    def test_mid_descent_expiry_salvages_complete_tour(self):
        """Expire the wall clock *during* the first descent (a stepping
        clock advances 1 ms per read, so a budget poll trips before the
        descent completes): the salvaged best-so-far must still be a
        complete permutation (the kernel syncs state before raising)."""

        class SteppingClock:
            def __init__(self):
                self.now = 0.0

            def __call__(self):
                self.now += 0.001
                return self.now

        n = 60
        m = random_matrix(n, 2)
        timer = Budget(wall_ms=8).start(clock=SteppingClock())
        with pytest.raises(SolverBudgetExceeded) as info:
            kernel_iterated_three_opt(
                m, starts=("identity", "greedy"), iterations=50,
                neighbors=8, seed=0, budget=timer,
            )
        tour = info.value.best_so_far
        assert tour is not None
        assert sorted(tour) == list(range(n))

    def test_salvage_matches_engine_contract_via_solve(self):
        m = random_matrix(40, 1)
        with pytest.raises(SolverBudgetExceeded) as info:
            solve_dtsp(m, effort="paper", seed=0,
                       budget=Budget(max_iterations=40))
        tour = info.value.best_so_far
        assert tour is not None
        assert sorted(tour) == list(range(40))


class TestEngineSelection:
    def test_known_engines(self):
        assert SOLVER_ENGINES == KERNEL_MODES + ("legacy",)
        assert resolve_solver_engine() == "guarded"
        assert resolve_solver_engine("turbo") == "turbo"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TSP_SOLVER", "legacy")
        assert resolve_solver_engine() == "legacy"
        # An explicit argument beats the environment.
        assert resolve_solver_engine("guarded") == "guarded"

    def test_unknown_engine_rejected(self, monkeypatch):
        with pytest.raises(UnknownNameError, match="solver engine"):
            resolve_solver_engine("simulated-annealing")
        monkeypatch.setenv("REPRO_TSP_SOLVER", "bogus")
        with pytest.raises(UnknownNameError):
            solve_dtsp(random_matrix(20, 0), effort="quick")

    def test_legacy_engine_is_bit_identical_to_iterated(self):
        m = random_matrix(30, 4)
        via_engine = solve_dtsp(m, effort="quick", seed=7, engine="legacy")
        direct = iterated_three_opt(
            m, starts=("identity",), iterations=20, neighbors=8, seed=7
        )
        assert via_engine.tour == direct.tour
        assert via_engine.cost == direct.cost


class TestCounters:
    def test_run_and_kick_counters_flow(self):
        before = obs.counters()
        kernel_iterated_three_opt(
            random_matrix(25, 6), starts=("identity", "nn"), iterations=8,
            neighbors=8, seed=0,
        )
        after = obs.counters()
        assert after.get("tsp.runs", 0) - before.get("tsp.runs", 0) == 2
        assert after.get("tsp.kicks", 0) - before.get("tsp.kicks", 0) == 16
