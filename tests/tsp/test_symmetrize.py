"""Tests for the 2-node DTSP→STSP transformation."""

import numpy as np
import pytest

from repro.tsp import (
    TSPError,
    directed_tour_to_sym,
    exact_tour,
    symmetrize,
    tour_cost,
)


def random_matrix(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.uniform(1, 100, size=(n, n))
    np.fill_diagonal(m, 0)
    return m


class TestSymmetrize:
    def test_structure(self):
        m = random_matrix(5, 0)
        sym = symmetrize(m, tour_upper_bound=500.0)
        w = sym.sym_matrix
        assert w.shape == (10, 10)
        assert np.allclose(w, w.T)
        for v in range(5):
            assert w[v, 5 + v] == -sym.lock_weight
        # out(u) -- in(v) carries c(u, v).
        assert w[5 + 2, 3] == m[2, 3]
        # in-in and out-out forbidden.
        assert w[0, 1] == sym.forbid_weight
        assert w[6, 7] == sym.forbid_weight

    def test_negative_costs_rejected(self):
        m = random_matrix(4, 1)
        m[0, 1] = -5
        with pytest.raises(TSPError):
            symmetrize(m)

    def test_cost_correspondence(self):
        """Directed tour cost == symmetric cost + n * lock."""
        m = random_matrix(6, 2)
        sym = symmetrize(m, tour_upper_bound=1000.0)
        directed = [3, 1, 0, 5, 2, 4]
        sym_tour = directed_tour_to_sym(directed, 6)
        sym_cost = tour_cost(sym.sym_matrix, sym_tour)
        assert sym.directed_cost(sym_cost) == pytest.approx(
            tour_cost(m, directed)
        )

    def test_decode_roundtrip(self):
        m = random_matrix(7, 3)
        sym = symmetrize(m, tour_upper_bound=1000.0)
        directed = [0, 4, 2, 6, 1, 5, 3]
        sym_tour = directed_tour_to_sym(directed, 7)
        decoded = sym.directed_tour_from_sym(sym_tour)
        # Decoding normalizes rotation to start at city 0.
        at = directed.index(0)
        assert decoded == directed[at:] + directed[:at]

    def test_decode_reversed_sym_tour(self):
        """A symmetric tour traversed backwards decodes to the same
        directed order (the doubled encoding is direction-canonical)."""
        m = random_matrix(5, 4)
        sym = symmetrize(m, tour_upper_bound=1000.0)
        directed = [0, 2, 4, 1, 3]
        sym_tour = directed_tour_to_sym(directed, 5)
        reversed_tour = [sym_tour[0]] + sym_tour[:0:-1]
        assert sym.directed_tour_from_sym(reversed_tour) == directed

    def test_decode_rejects_lock_violations(self):
        m = random_matrix(4, 5)
        sym = symmetrize(m, tour_upper_bound=100.0)
        bad = [0, 1, 4, 5, 2, 6, 3, 7]  # locks not adjacent
        with pytest.raises(TSPError):
            sym.directed_tour_from_sym(bad)

    def test_optimal_sym_tour_cost_matches_directed_optimum(self):
        """Brute-force check of the reduction's optimality preservation."""
        import itertools
        m = random_matrix(5, 6)
        _, directed_opt = exact_tour(m)
        sym = symmetrize(m, tour_upper_bound=directed_opt + 1)
        # Enumerate directed tours via the doubled encoding.
        best = float("inf")
        for perm in itertools.permutations(range(1, 5)):
            tour = directed_tour_to_sym([0, *perm], 5)
            best = min(best, tour_cost(sym.sym_matrix, tour))
        assert sym.directed_cost(best) == pytest.approx(directed_opt)
