"""Tests for solver budgets (repro.budget) and their solver integration."""

import numpy as np
import pytest

from repro.budget import UNLIMITED, Budget, BudgetTimer, ensure_timer
from repro.errors import SolverBudgetExceeded
from repro.tsp import (
    branch_and_bound,
    exact_tour,
    held_karp_bound_directed,
    held_karp_bound_symmetric,
    solve_dtsp,
)


def random_matrix(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.uniform(1, 100, size=(n, n))
    np.fill_diagonal(m, 0)
    return m


class FakeClock:
    """Deterministic monotonic clock (seconds)."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance_ms(self, ms):
        self.now += ms / 1000.0


class TestBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(wall_ms=-1)
        with pytest.raises(ValueError):
            Budget(max_iterations=-5)

    def test_unlimited(self):
        assert UNLIMITED.unlimited
        assert Budget().unlimited
        assert not Budget(wall_ms=10).unlimited
        assert not Budget(max_iterations=10).unlimited

    def test_is_hashable_for_cache_keys(self):
        assert len({Budget(wall_ms=10), Budget(wall_ms=10), Budget()}) == 2


class TestBudgetTimer:
    def test_wall_clock_expiry_with_fake_clock(self):
        clock = FakeClock()
        timer = Budget(wall_ms=100).start(clock=clock)
        assert not timer.expired
        timer.check(where="test")  # no raise before the deadline
        clock.advance_ms(99.9)
        assert not timer.expired
        clock.advance_ms(0.2)
        assert timer.expired
        with pytest.raises(SolverBudgetExceeded) as info:
            timer.check(where="test")
        assert info.value.where == "test"
        assert info.value.elapsed_ms == pytest.approx(100.1)

    def test_iteration_expiry(self):
        timer = Budget(max_iterations=3).start()
        timer.tick(2)
        with pytest.raises(SolverBudgetExceeded) as info:
            timer.tick()
        assert info.value.iterations == 3

    def test_deadline_starts_at_start_not_construction(self):
        clock = FakeClock()
        budget = Budget(wall_ms=50)
        clock.advance_ms(1000)  # time passes before the solve begins
        timer = budget.start(clock=clock)
        assert not timer.expired


class TestEnsureTimer:
    def test_none_and_unlimited_are_free(self):
        assert ensure_timer(None) is None
        assert ensure_timer(UNLIMITED) is None

    def test_spec_starts_a_fresh_timer(self):
        timer = ensure_timer(Budget(max_iterations=5))
        assert isinstance(timer, BudgetTimer)
        assert timer.iterations == 0

    def test_running_timer_passes_through(self):
        timer = Budget(max_iterations=5).start()
        assert ensure_timer(timer) is timer


class TestSolverIntegration:
    def test_solve_dtsp_raises_on_expired_budget(self):
        m = random_matrix(30, 0)
        clock = FakeClock()
        timer = Budget(wall_ms=10).start(clock=clock)
        clock.advance_ms(11)
        with pytest.raises(SolverBudgetExceeded):
            solve_dtsp(m, effort="quick", seed=0, budget=timer)

    def test_solve_dtsp_salvages_best_so_far_mid_run(self):
        # Enough iterations to finish the first descent, not the whole run.
        m = random_matrix(30, 1)
        with pytest.raises(SolverBudgetExceeded) as info:
            solve_dtsp(m, effort="paper", seed=0,
                       budget=Budget(max_iterations=40))
        tour = info.value.best_so_far
        assert tour is not None
        assert sorted(tour) == list(range(30))

    def test_unbudgeted_solve_unchanged(self):
        m = random_matrix(20, 2)
        a = solve_dtsp(m, effort="quick", seed=3)
        b = solve_dtsp(m, effort="quick", seed=3, budget=None)
        assert a.tour == b.tour and a.cost == b.cost

    def test_held_karp_returns_certified_bound_on_expiry(self):
        m = random_matrix(12, 3)
        sym = (m + m.T) / 2
        full = held_karp_bound_symmetric(sym)
        cut = held_karp_bound_symmetric(sym, budget=Budget(max_iterations=0))
        assert cut.budget_exhausted
        assert not full.budget_exhausted
        # Still a valid (weaker or equal) certified bound.
        assert cut.bound <= full.bound + 1e-9

    def test_held_karp_directed_propagates_flag(self):
        m = random_matrix(12, 4)
        cut = held_karp_bound_directed(m, budget=Budget(max_iterations=0))
        assert cut.budget_exhausted

    def test_branch_and_bound_keeps_incumbent_on_expiry(self):
        m = random_matrix(12, 5)
        clock = FakeClock()
        timer = Budget(wall_ms=10).start(clock=clock)
        clock.advance_ms(11)
        result = branch_and_bound(m, budget=timer)
        assert not result.optimal
        assert sorted(result.tour) == list(range(12))
        _, optimal = exact_tour(m)
        assert result.cost >= optimal - 1e-9
