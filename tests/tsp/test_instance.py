"""Tests for TSP instance primitives."""

import numpy as np
import pytest

from repro.tsp import (
    TSPError,
    check_matrix,
    check_tour,
    out_neighbor_lists,
    path_cost,
    tour_cost,
)
from repro.tsp.instance import (
    random_tour,
    successor_array,
    tour_from_successors,
)


class TestChecks:
    def test_check_matrix_accepts_square(self):
        check_matrix(np.zeros((3, 3)))

    def test_check_matrix_rejects_nonsquare(self):
        with pytest.raises(TSPError):
            check_matrix(np.zeros((2, 3)))

    def test_check_matrix_rejects_inf(self):
        m = np.zeros((3, 3))
        m[0, 1] = np.inf
        with pytest.raises(TSPError):
            check_matrix(m)

    def test_check_matrix_rejects_tiny(self):
        with pytest.raises(TSPError):
            check_matrix(np.zeros((1, 1)))

    def test_check_tour(self):
        check_tour([2, 0, 1], 3)
        with pytest.raises(TSPError):
            check_tour([0, 0, 1], 3)


class TestCosts:
    def test_tour_cost_includes_closing_edge(self):
        m = np.array([[0.0, 1.0], [10.0, 0.0]])
        assert tour_cost(m, [0, 1]) == 11.0

    def test_path_cost_open(self):
        m = np.array([[0.0, 1.0], [10.0, 0.0]])
        assert path_cost(m, [0, 1]) == 1.0

    def test_asymmetric_direction_matters(self):
        m = np.array([[0, 1, 5], [5, 0, 1], [1, 5, 0]], dtype=float)
        assert tour_cost(m, [0, 1, 2]) == 3.0
        assert tour_cost(m, [0, 2, 1]) == 15.0


class TestSuccessors:
    def test_roundtrip(self):
        tour = [3, 1, 0, 2]
        succ = successor_array(tour)
        rebuilt = tour_from_successors(succ, start=3)
        assert rebuilt == tour

    def test_subcycles_detected(self):
        succ = np.array([1, 0, 3, 2])  # two 2-cycles
        with pytest.raises(TSPError):
            tour_from_successors(succ, start=0)


class TestNeighborLists:
    def test_sorted_ascending_and_excludes_self(self):
        m = np.array(
            [[0, 5, 1, 9], [5, 0, 2, 1], [1, 2, 0, 7], [9, 1, 7, 0]],
            dtype=float,
        )
        neigh = out_neighbor_lists(m, 2)
        assert list(neigh[0]) == [2, 1]
        assert all(0 not in row or row[0] != 0 for row in neigh[0:1])

    def test_k_clamped(self):
        m = np.ones((3, 3))
        assert out_neighbor_lists(m, 10).shape == (3, 2)

    def test_random_tour_is_permutation(self):
        import random
        tour = random_tour(10, random.Random(0))
        check_tour(tour, 10)
