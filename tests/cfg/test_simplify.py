"""Tests for CFG simplification passes."""

import random

import pytest

from repro.cfg import (
    CFGBuilder,
    Procedure,
    TerminatorKind,
    validate_cfg,
)
from repro.cfg.simplify import (
    fold_degenerate_branches,
    merge_chains,
    prune_unreachable,
    simplify_cfg,
    simplify_procedure,
    thread_trivial_jumps,
)


def chain_with_clutter():
    """entry -> fwd(empty) -> a -> b -> ret, plus a degenerate cond."""
    b = CFGBuilder()
    b.block("entry", padding=1).cond("fwd", "fwd")   # degenerate
    b.block("fwd").jump("a")                          # empty forwarder
    b.block("a", padding=2).jump("b")
    b.block("b", padding=3).ret()
    return b, b.build(entry="entry")


class TestIndividualPasses:
    def test_fold_degenerate(self):
        b, cfg = chain_with_clutter()
        assert fold_degenerate_branches(cfg) == 1
        entry = cfg.block(cfg.entry)
        assert entry.kind is TerminatorKind.UNCONDITIONAL

    def test_thread_trivial_jumps(self):
        b, cfg = chain_with_clutter()
        fold_degenerate_branches(cfg)
        assert thread_trivial_jumps(cfg) >= 1
        entry = cfg.block(cfg.entry)
        assert entry.terminator.targets == (b.id_of("a"),)

    def test_merge_chains(self):
        b, cfg = chain_with_clutter()
        fold_degenerate_branches(cfg)
        thread_trivial_jumps(cfg)
        cfg, _ = prune_unreachable(cfg)  # drop the orphaned forwarder
        remap = {blk: blk for blk in cfg.block_ids}
        merged = merge_chains(cfg, remap)
        assert merged >= 2
        # All code ends up in the entry block.
        assert remap[b.id_of("b")] in (cfg.entry, b.id_of("a"))

    def test_prune_unreachable(self):
        b, cfg = chain_with_clutter()
        fold_degenerate_branches(cfg)
        thread_trivial_jumps(cfg)
        pruned_cfg, pruned = prune_unreachable(cfg)
        assert pruned == 1  # the forwarder
        assert b.id_of("fwd") not in pruned_cfg


class TestSimplifyCfg:
    def test_whole_chain_collapses_to_one_block(self):
        _, cfg = chain_with_clutter()
        result = simplify_cfg(cfg)
        assert len(result.cfg) == 1
        only = result.cfg.block(result.cfg.entry)
        assert only.kind is TerminatorKind.RETURN
        assert only.body_words == 1 + 2 + 3  # padding preserved
        validate_cfg(result.cfg)

    def test_original_untouched(self):
        _, cfg = chain_with_clutter()
        before = len(cfg)
        simplify_cfg(cfg)
        assert len(cfg) == before

    def test_remap_points_into_surviving_blocks(self):
        _, cfg = chain_with_clutter()
        result = simplify_cfg(cfg)
        surviving = set(result.cfg.block_ids)
        assert result.remap
        assert all(target in surviving for target in result.remap.values())

    def test_loops_preserved(self, loop_cfg):
        result = simplify_cfg(loop_cfg)
        validate_cfg(result.cfg)
        from repro.cfg import natural_loops
        assert len(natural_loops(result.cfg)) == 1

    def test_idempotent(self, loop_cfg):
        once = simplify_cfg(loop_cfg)
        twice = simplify_cfg(once.cfg)
        assert len(twice.cfg) == len(once.cfg)
        assert twice.merged_blocks == 0
        assert twice.threaded_jumps == 0

    def test_random_cfgs_stay_valid_and_shrink(self):
        from repro.workloads import GeneratorConfig, random_procedure
        rng = random.Random(0)
        for i in range(15):
            proc = random_procedure(
                f"p{i}", rng, GeneratorConfig(target_blocks=40)
            )
            simplified, result = simplify_procedure(proc)
            validate_cfg(simplified.cfg)
            assert len(simplified.cfg) <= len(proc.cfg)

    def test_branch_structure_preserved(self, diamond_cfg):
        """A real diamond must survive simplification (arms differ)."""
        result = simplify_cfg(diamond_cfg)
        kinds = [b.kind for b in result.cfg]
        assert TerminatorKind.CONDITIONAL in kinds


class TestSemanticsPreserved:
    def test_lang_program_behaviour_unchanged(self):
        """Simplify the CFGs of a compiled program and re-run: identical
        outputs (the VM executes whatever CFG it is given)."""
        from repro.lang import compile_source, execute
        from repro.cfg.graph import Program

        source = """
        fn main() {
          var i = 0;
          var acc = 0;
          while (i < input_len()) {
            if (input(i) % 2 == 0) { acc = acc + input(i); }
            i = i + 1;
          }
          output(acc);
          return acc;
        }
        """
        module = compile_source(source)
        inputs = list(range(50))
        expected = execute(module, inputs, trace=False)

        simplified_program = Program(main=module.program.main)
        for proc in module.program:
            simplified, _ = simplify_procedure(proc)
            simplified_program.add(simplified)
        module.program = simplified_program
        actual = execute(module, inputs, trace=False)
        assert actual.returned == expected.returned
        assert actual.outputs == expected.outputs
        # Simplification shortens the dynamic block count.
        assert actual.blocks_executed <= expected.blocks_executed
