"""Tests for the fluent CFG builder."""

import pytest

from repro.cfg import CFGBuilder, CFGError, TerminatorKind


class TestBuilder:
    def test_forward_references_work(self):
        b = CFGBuilder()
        b.block("a").jump("later")
        b.block("later").ret()
        cfg = b.build(entry="a")
        assert len(cfg) == 2

    def test_missing_terminator_is_an_error(self):
        b = CFGBuilder()
        b.block("a").jump("b")
        b.block("b")  # never terminated
        with pytest.raises(CFGError, match="without terminators"):
            b.build(entry="a")

    def test_unknown_entry_is_an_error(self):
        b = CFGBuilder()
        b.block("a").ret()
        with pytest.raises(CFGError, match="unknown entry"):
            b.build(entry="zzz")

    def test_padding_and_instructions_accumulate(self):
        b = CFGBuilder()
        b.block("a", padding=4, instructions=["i1"]).ret()
        b.block("a", instructions=["i2"])
        cfg = b.build(entry="a")
        block = cfg.block(b.id_of("a"))
        assert block.padding == 4
        assert block.instructions == ["i1", "i2"]

    def test_switch_builder(self):
        b = CFGBuilder()
        b.block("s").switch(["x", "y", "x"])
        b.block("x").ret()
        b.block("y").ret()
        cfg = b.build(entry="s")
        switch = cfg.block(b.id_of("s"))
        assert switch.kind is TerminatorKind.MULTIWAY
        assert switch.terminator.targets == (
            b.id_of("x"), b.id_of("y"), b.id_of("x"),
        )

    def test_cond_operand_is_preserved(self):
        b = CFGBuilder()
        b.block("c").cond("t", "f", operand=("l", 3))
        b.block("t").ret()
        b.block("f").ret()
        cfg = b.build(entry="c")
        assert cfg.block(b.id_of("c")).terminator.operand == ("l", 3)

    def test_labels_recorded_on_blocks(self):
        b = CFGBuilder()
        b.block("start").ret()
        cfg = b.build(entry="start")
        assert cfg.block(0).label == "start"

    def test_ids_assigned_in_declaration_order(self):
        b = CFGBuilder()
        b.block("first").jump("second")
        b.block("second").jump("third")
        b.block("third").ret()
        assert [b.id_of(n) for n in ("first", "second", "third")] == [0, 1, 2]
