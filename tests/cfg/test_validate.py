"""Tests for CFG/program validation."""

import pytest

from repro.cfg import (
    CFGBuilder,
    CFGError,
    Procedure,
    Program,
    validate_cfg,
    validate_procedure,
    validate_program,
)


class TestValidateCFG:
    def test_valid_cfg_passes(self, loop_cfg):
        validate_cfg(loop_cfg)

    def test_missing_exit_rejected(self):
        b = CFGBuilder()
        b.block("a").jump("b")
        b.block("b").jump("a")
        cfg = b.build(entry="a")
        with pytest.raises(CFGError, match="RETURN"):
            validate_cfg(cfg)

    def test_missing_exit_allowed_when_not_required(self):
        b = CFGBuilder()
        b.block("a").jump("b")
        b.block("b").jump("a")
        cfg = b.build(entry="a")
        validate_cfg(cfg, require_exit=False)

    def test_stuck_blocks_rejected(self):
        b = CFGBuilder()
        b.block("a").cond("trap1", "out")
        b.block("trap1").jump("trap2")
        b.block("trap2").jump("trap1")
        b.block("out").ret()
        cfg = b.build(entry="a")
        with pytest.raises(CFGError, match="cannot reach an exit"):
            validate_cfg(cfg)


class TestValidateProgram:
    def test_missing_main_rejected(self, loop_cfg):
        program = Program(main="main")
        program.add(Procedure("helper", loop_cfg))
        with pytest.raises(CFGError, match="missing entry procedure"):
            validate_program(program)

    def test_error_names_the_procedure(self):
        b = CFGBuilder()
        b.block("a").jump("a")
        cfg = b.build(entry="a")
        program = Program(main="bad")
        program.add(Procedure("bad", cfg))
        with pytest.raises(CFGError, match="'bad'"):
            validate_program(program)

    def test_valid_program_passes(self, loop_program):
        validate_program(loop_program)
        validate_procedure(loop_program["main"])
