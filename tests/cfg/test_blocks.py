"""Tests for basic blocks and terminators."""

import pytest

from repro.cfg import BasicBlock, Terminator, TerminatorKind, make_block


class TestTerminator:
    def test_unconditional_needs_one_target(self):
        Terminator(TerminatorKind.UNCONDITIONAL, (1,))
        with pytest.raises(ValueError):
            Terminator(TerminatorKind.UNCONDITIONAL, (1, 2))
        with pytest.raises(ValueError):
            Terminator(TerminatorKind.UNCONDITIONAL, ())

    def test_conditional_needs_two_targets(self):
        Terminator(TerminatorKind.CONDITIONAL, (1, 2))
        with pytest.raises(ValueError):
            Terminator(TerminatorKind.CONDITIONAL, (1,))

    def test_multiway_needs_targets(self):
        Terminator(TerminatorKind.MULTIWAY, (1,))
        Terminator(TerminatorKind.MULTIWAY, (1, 2, 1, 3))
        with pytest.raises(ValueError):
            Terminator(TerminatorKind.MULTIWAY, ())

    def test_return_takes_no_targets(self):
        Terminator(TerminatorKind.RETURN, ())
        with pytest.raises(ValueError):
            Terminator(TerminatorKind.RETURN, (1,))

    def test_successors_deduplicate_preserving_order(self):
        term = Terminator(TerminatorKind.MULTIWAY, (3, 1, 3, 2, 1))
        assert term.successors == (3, 1, 2)

    def test_conditional_same_arm_successors(self):
        term = Terminator(TerminatorKind.CONDITIONAL, (4, 4))
        assert term.successors == (4,)

    def test_retargeted_rewrites_all_slots(self):
        term = Terminator(TerminatorKind.MULTIWAY, (1, 2, 1))
        remapped = term.retargeted({1: 10, 2: 20})
        assert remapped.targets == (10, 20, 10)
        assert remapped.kind is TerminatorKind.MULTIWAY

    def test_retargeted_keeps_unmapped_targets(self):
        term = Terminator(TerminatorKind.CONDITIONAL, (1, 2))
        assert term.retargeted({1: 5}).targets == (5, 2)


class TestBasicBlock:
    def test_body_words_counts_instructions_and_padding(self):
        block = make_block(
            0, TerminatorKind.RETURN, instructions=["a", "b"], padding=3
        )
        assert block.body_words == 5

    def test_kind_and_successors_proxy_terminator(self):
        block = make_block(1, TerminatorKind.CONDITIONAL, (2, 3))
        assert block.kind is TerminatorKind.CONDITIONAL
        assert block.successors == (2, 3)

    def test_make_block_accepts_kind_string(self):
        block = make_block(0, "unconditional", (1,))
        assert block.kind is TerminatorKind.UNCONDITIONAL

    def test_make_block_rejects_unknown_kind_string(self):
        with pytest.raises(ValueError):
            make_block(0, "bogus", (1,))
