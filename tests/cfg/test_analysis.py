"""Tests for dominators, loops, and orderings."""

from repro.cfg import CFGBuilder
from repro.cfg.analysis import (
    dominates,
    immediate_dominators,
    loop_nesting_depth,
    natural_loops,
    reverse_postorder,
)


def nested_loop_cfg():
    """Outer loop containing an inner loop."""
    b = CFGBuilder()
    b.block("entry").jump("outer_head")
    b.block("outer_head").cond("inner_head", "exit")
    b.block("inner_head").cond("inner_body", "outer_latch")
    b.block("inner_body").jump("inner_head")
    b.block("outer_latch").jump("outer_head")
    b.block("exit").ret()
    return b, b.build(entry="entry")


class TestReversePostorder:
    def test_entry_first_and_complete(self, loop_cfg):
        order = reverse_postorder(loop_cfg)
        assert order[0] == loop_cfg.entry
        assert set(order) == loop_cfg.reachable()

    def test_acyclic_topological(self, diamond_cfg):
        order = reverse_postorder(diamond_cfg)
        position = {block: i for i, block in enumerate(order)}
        for block_id in order:
            for succ in diamond_cfg.successors(block_id):
                assert position[block_id] < position[succ]


class TestDominators:
    def test_diamond_dominators(self, diamond_cfg):
        idom = immediate_dominators(diamond_cfg)
        entry = diamond_cfg.entry
        # All blocks are immediately dominated by the entry.
        for block_id in diamond_cfg.reachable() - {entry}:
            assert idom[block_id] == entry

    def test_nested_loops_dominator_chain(self):
        b, cfg = nested_loop_cfg()
        idom = immediate_dominators(cfg)
        assert idom[b.id_of("inner_head")] == b.id_of("outer_head")
        assert idom[b.id_of("inner_body")] == b.id_of("inner_head")

    def test_dominates_is_reflexive_and_transitive(self):
        b, cfg = nested_loop_cfg()
        idom = immediate_dominators(cfg)
        entry = b.id_of("entry")
        inner = b.id_of("inner_body")
        assert dominates(idom, inner, inner)
        assert dominates(idom, entry, inner)
        assert not dominates(idom, inner, entry)


class TestLoops:
    def test_two_nested_loops_found(self):
        b, cfg = nested_loop_cfg()
        loops = natural_loops(cfg)
        headers = {loop.header for loop in loops}
        assert headers == {b.id_of("outer_head"), b.id_of("inner_head")}

    def test_inner_loop_body_is_subset_of_outer(self):
        b, cfg = nested_loop_cfg()
        loops = {loop.header: loop for loop in natural_loops(cfg)}
        inner = loops[b.id_of("inner_head")]
        outer = loops[b.id_of("outer_head")]
        assert inner.body < outer.body

    def test_nesting_depth(self):
        b, cfg = nested_loop_cfg()
        depth = loop_nesting_depth(cfg)
        assert depth[b.id_of("entry")] == 0
        assert depth[b.id_of("exit")] == 0
        assert depth[b.id_of("outer_head")] == 1
        assert depth[b.id_of("inner_body")] == 2

    def test_single_loop(self, loop_cfg):
        loops = natural_loops(loop_cfg)
        assert len(loops) == 1
        head = next(blk for blk in loop_cfg if blk.label == "head")
        assert loops[0].header == head.block_id
        exit_block = next(blk for blk in loop_cfg if blk.label == "exit")
        assert exit_block.block_id not in loops[0].body
