"""Tests for DOT export."""

from repro.cfg import cfg_to_dot


class TestDot:
    def test_contains_all_blocks_and_edges(self, diamond_cfg):
        dot = cfg_to_dot(diamond_cfg)
        assert dot.startswith("digraph")
        for block in diamond_cfg:
            assert f"n{block.block_id} [" in dot
        for edge in diamond_cfg.edges():
            assert f"n{edge.src} -> n{edge.dst}" in dot

    def test_entry_highlighted(self, diamond_cfg):
        dot = cfg_to_dot(diamond_cfg)
        assert "penwidth=2" in dot

    def test_edge_weights_annotated(self, diamond_cfg):
        edge = diamond_cfg.edges()[0]
        dot = cfg_to_dot(diamond_cfg, edge_weights={edge.key: 42.0})
        assert "42" in dot

    def test_layout_positions_annotated(self, diamond_cfg):
        order = [b.block_id for b in diamond_cfg]
        dot = cfg_to_dot(diamond_cfg, layout_order=order)
        assert "#0" in dot and "#3" in dot

    def test_quotes_escaped(self, diamond_cfg):
        dot = cfg_to_dot(diamond_cfg, name='with "quotes"')
        assert '\\"quotes\\"' in dot

    def test_shapes_by_kind(self, loop_cfg):
        dot = cfg_to_dot(loop_cfg)
        assert "diamond" in dot       # conditional
        assert "hexagon" in dot       # multiway
        assert "doublecircle" in dot  # return
