"""Tests for ControlFlowGraph / Procedure / Program."""

import pytest

from repro.cfg import (
    CFGBuilder,
    CFGError,
    ControlFlowGraph,
    Procedure,
    Program,
    Terminator,
    TerminatorKind,
    make_block,
)


def chain_cfg():
    """0 -> 1 -> 2(ret)."""
    return ControlFlowGraph(
        0,
        [
            make_block(0, TerminatorKind.UNCONDITIONAL, (1,)),
            make_block(1, TerminatorKind.UNCONDITIONAL, (2,)),
            make_block(2, TerminatorKind.RETURN),
        ],
    )


class TestConstruction:
    def test_duplicate_block_ids_rejected(self):
        with pytest.raises(CFGError, match="duplicate"):
            ControlFlowGraph(
                0,
                [
                    make_block(0, TerminatorKind.RETURN),
                    make_block(0, TerminatorKind.RETURN),
                ],
            )

    def test_missing_entry_rejected(self):
        with pytest.raises(CFGError, match="entry"):
            ControlFlowGraph(5, [make_block(0, TerminatorKind.RETURN)])

    def test_dangling_target_rejected(self):
        with pytest.raises(CFGError, match="missing block"):
            ControlFlowGraph(
                0, [make_block(0, TerminatorKind.UNCONDITIONAL, (7,))]
            )


class TestQueries:
    def test_successors_and_predecessors(self, loop_cfg):
        body = next(b for b in loop_cfg if b.label == "body")
        latch = next(b for b in loop_cfg if b.label == "latch")
        head = next(b for b in loop_cfg if b.label == "head")
        assert len(body.successors) == 3  # c0, c1, c2 (c0 repeated)
        assert head.block_id in loop_cfg.predecessors(body.block_id)
        assert latch.block_id in loop_cfg.predecessors(head.block_id)

    def test_edges_merge_parallel_slots(self, loop_cfg):
        body = next(b for b in loop_cfg if b.label == "body")
        edges = {e.key: e for e in loop_cfg.edges()}
        c0 = next(b for b in loop_cfg if b.label == "c0")
        labels = edges[(body.block_id, c0.block_id)].labels
        assert labels == ("case0", "case3")

    def test_reachable_ignores_orphans(self):
        cfg = chain_cfg()
        cfg.add_block(make_block(9, TerminatorKind.RETURN))
        assert cfg.reachable() == {0, 1, 2}

    def test_depth_first_order_starts_at_entry(self, loop_cfg):
        order = loop_cfg.depth_first_order()
        assert order[0] == loop_cfg.entry
        assert set(order) == loop_cfg.reachable()

    def test_exit_blocks(self, loop_cfg):
        exits = loop_cfg.exit_blocks()
        assert len(exits) == 1

    def test_replace_terminator_revalidates(self):
        cfg = chain_cfg()
        with pytest.raises(CFGError):
            cfg.replace_terminator(
                0, Terminator(TerminatorKind.UNCONDITIONAL, (42,))
            )
        cfg.replace_terminator(0, Terminator(TerminatorKind.UNCONDITIONAL, (2,)))
        assert cfg.successors(0) == (2,)

    def test_replace_terminator_invalidates_predecessors(self):
        cfg = chain_cfg()
        assert cfg.predecessors(1) == [0]
        cfg.replace_terminator(0, Terminator(TerminatorKind.UNCONDITIONAL, (2,)))
        assert cfg.predecessors(1) == []

    def test_copy_is_independent(self):
        cfg = chain_cfg()
        clone = cfg.copy()
        clone.replace_terminator(
            0, Terminator(TerminatorKind.UNCONDITIONAL, (2,))
        )
        assert cfg.successors(0) == (1,)

    def test_fresh_block_id(self):
        cfg = chain_cfg()
        assert cfg.fresh_block_id() == 3

    def test_total_body_words(self, diamond_cfg):
        assert diamond_cfg.total_body_words() == 2 + 3 + 4 + 1


class TestProcedureAndProgram:
    def test_branch_sites_are_decision_blocks(self, loop_cfg):
        proc = Procedure("p", loop_cfg)
        labels = {loop_cfg.block(b).label for b in proc.branch_sites()}
        assert labels == {"head", "body", "c1"}

    def test_program_rejects_duplicate_procedures(self, loop_cfg):
        program = Program()
        program.add(Procedure("p", loop_cfg))
        with pytest.raises(CFGError, match="duplicate"):
            program.add(Procedure("p", loop_cfg))

    def test_program_totals(self, loop_cfg, diamond_cfg):
        program = Program(main="a")
        program.add(Procedure("a", loop_cfg))
        program.add(Procedure("b", diamond_cfg))
        assert program.total_blocks() == len(loop_cfg) + len(diamond_cfg)
        assert program.total_branch_sites() == 3 + 1

    def test_entry_procedure_lookup(self, diamond_cfg):
        program = Program(main="m")
        program.add(Procedure("m", diamond_cfg))
        assert program.entry_procedure.name == "m"
        assert "m" in program
        assert "x" not in program
