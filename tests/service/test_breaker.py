"""The circuit breaker state machine, unit and in-service.

Every transition is request-count deterministic — no wall clock — so
these tests replay exact sequences and assert exact states, and the
same request stream produces the same breaker story under ``jobs=1``
and ``jobs=4``.
"""

import pytest

from repro.experiments.runner import MethodOutcome
from repro.faults import inject_faults
from repro.service import AlignmentService, BreakerState, ServiceConfig
from repro.service.breaker import (
    ROUTE_FALLBACK,
    ROUTE_PRIMARY,
    ROUTE_PROBE,
    CircuitBreaker,
)

from .conftest import make_payload


class TestStateMachine:
    def test_closed_until_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("tsp", failure_threshold=3)
        for _ in range(2):
            assert breaker.route() == ROUTE_PRIMARY
            breaker.record(ROUTE_PRIMARY, failed=True)
        assert breaker.state is BreakerState.CLOSED
        breaker.record(breaker.route(), failed=True)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker("tsp", failure_threshold=2)
        breaker.record(breaker.route(), failed=True)
        breaker.record(breaker.route(), failed=False)
        breaker.record(breaker.route(), failed=True)
        assert breaker.state is BreakerState.CLOSED

    def test_open_routes_fallback_for_cooldown_then_probes(self):
        breaker = CircuitBreaker(
            "tsp", failure_threshold=1, cooldown_requests=3
        )
        breaker.record(breaker.route(), failed=True)
        assert [breaker.route() for _ in range(3)] == [ROUTE_FALLBACK] * 3
        assert breaker.route() == ROUTE_PROBE
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(
            "tsp", failure_threshold=1, cooldown_requests=1
        )
        breaker.record(breaker.route(), failed=True)
        breaker.route()  # fallback (cooldown)
        probe = breaker.route()
        assert probe == ROUTE_PROBE
        breaker.record(probe, failed=False)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.route() == ROUTE_PRIMARY

    def test_probe_failure_reopens_and_cooldown_restarts(self):
        breaker = CircuitBreaker(
            "tsp", failure_threshold=1, cooldown_requests=2
        )
        breaker.record(breaker.route(), failed=True)
        assert breaker.opened == 1
        breaker.route(), breaker.route()  # burn the cooldown
        probe = breaker.route()
        breaker.record(probe, failed=True)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened == 2
        # The full cooldown applies again before the next probe.
        assert [breaker.route() for _ in range(2)] == [ROUTE_FALLBACK] * 2
        assert breaker.route() == ROUTE_PROBE

    def test_fallback_outcomes_carry_no_signal(self):
        breaker = CircuitBreaker(
            "tsp", failure_threshold=1, cooldown_requests=5
        )
        breaker.record(breaker.route(), failed=True)
        route = breaker.route()
        assert route == ROUTE_FALLBACK
        breaker.record(route, failed=True)   # fallback failed: ignored
        breaker.record(route, failed=False)  # fallback fine: ignored
        assert breaker.state is BreakerState.OPEN

    def test_deterministic_replay(self):
        def story():
            breaker = CircuitBreaker(
                "tsp", failure_threshold=2, cooldown_requests=2
            )
            log = []
            fail_pattern = [True, True, False, True, True, True, False]
            for failed in fail_pattern:
                route = breaker.route()
                breaker.record(route, failed=failed)
                log.append((route, breaker.state.value, breaker.opened))
            return log

        assert story() == story()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", cooldown_requests=0)


def breaker_story(jobs: int, requests: int = 6) -> list[tuple]:
    """Drive one service with a fixed crash-everything request stream and
    return the observable breaker story per response."""
    service = AlignmentService(ServiceConfig(
        capacity=requests,
        jobs=jobs,
        breaker_threshold=2,
        breaker_cooldown=2,
    )).start()
    story = []
    try:
        with inject_faults(worker_crash=True):
            for _ in range(requests):
                response = service.align(make_payload(), timeout=120)
                story.append((
                    response["served_by"],
                    response["breaker"]["state"],
                    response["breaker"]["opened"],
                    sorted(set(response["degraded"].values())),
                ))
    finally:
        assert service.drain(timeout=60)
    return story


class TestInService:
    def test_repeated_crashes_open_breaker_and_fall_back(self):
        story = breaker_story(jobs=1)
        # Two crash-quarantined tsp requests open the breaker...
        assert story[0][:2] == ("tsp", "closed")
        assert story[1][:2] == ("tsp", "open")
        # ...then the cooldown serves greedy with breaker_fallback rows.
        assert story[2][0] == "greedy"
        assert "breaker_fallback" in story[2][3]
        assert story[3][0] == "greedy"
        # Cooldown spent: the probe runs tsp, crashes, re-opens.
        assert story[4][0] == "tsp"
        assert story[4][1] == "open" and story[4][2] == 2

    def test_breaker_story_is_worker_count_invariant(self):
        assert breaker_story(jobs=1, requests=5) == breaker_story(
            jobs=4, requests=5
        )

    def test_probe_success_restores_primary(self, service, payload):
        breaker = service.breaker("tsp")
        # Open the breaker with injected infrastructure failures.
        with inject_faults(worker_crash=True):
            for _ in range(service.config.breaker_threshold):
                service.align(payload, timeout=120)
        assert breaker.state is BreakerState.OPEN
        # Clean requests: cooldown fallbacks, then a clean probe closes.
        for _ in range(service.config.breaker_cooldown):
            assert service.align(payload, timeout=120)["served_by"] == "greedy"
        probe = service.align(payload, timeout=120)
        assert probe["served_by"] == "tsp"
        assert breaker.state is BreakerState.CLOSED
        assert service.align(payload, timeout=120)["served_by"] == "tsp"

    def test_probe_fail_fault_site_reopens(self, service, payload):
        breaker = service.breaker("tsp")
        with inject_faults(worker_crash=True):
            for _ in range(service.config.breaker_threshold):
                service.align(payload, timeout=120)
        assert breaker.state is BreakerState.OPEN
        for _ in range(service.config.breaker_cooldown):
            service.align(payload, timeout=120)
        # The probe itself is failed by the fault site: served by the
        # fallback, breaker re-opens without running the primary at all.
        with inject_faults(breaker_probe_fail=True) as plan:
            probe = service.align(payload, timeout=120)
        assert plan.trips("breaker_probe") == 1
        assert probe["served_by"] == "greedy"
        assert "breaker_fallback" in probe["degraded"].values()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened == 2


class TestSuiteTableRendering:
    def test_breaker_fallback_renders_in_degraded_summary(self):
        from repro.core.costmodel import CostBreakdown
        from repro.machine.timing import TimingBreakdown

        outcome = MethodOutcome(
            method="tsp",
            penalty=0.0,
            breakdown=CostBreakdown(),
            timing=TimingBreakdown(),
            align_seconds=0.0,
            layouts={},
            degraded={"f": "breaker_fallback", "g": "breaker_fallback",
                      "h": "greedy"},
        )
        assert outcome.degraded_summary == "breaker_fallback×2,greedy"
