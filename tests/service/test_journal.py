"""The write-ahead request journal: keys, replay, torn tails, degradation."""

import json

import pytest

from repro import faults
from repro.service.journal import (
    JOURNAL_VERSION,
    RequestJournal,
    request_key,
)

from .conftest import make_payload


@pytest.fixture
def journal(tmp_path):
    return RequestJournal(tmp_path / "journal.jsonl")


class TestRequestKey:
    def test_identical_payloads_share_a_key(self):
        assert request_key(make_payload()) == request_key(make_payload())

    def test_key_covers_the_alignment_inputs(self):
        base = request_key(make_payload())
        assert request_key(make_payload(seed=7)) != base
        assert request_key(make_payload(method="greedy")) != base
        assert request_key(make_payload(inputs=[1, 2, 3])) != base

    def test_field_order_is_irrelevant(self):
        payload = make_payload()
        reordered = dict(reversed(list(payload.items())))
        assert request_key(payload) == request_key(reordered)

    def test_defaults_are_normalized(self):
        # An absent field and its explicit default are the same request.
        explicit = make_payload(model="alpha21164", effort="default")
        implicit = make_payload()
        assert request_key(explicit) == request_key(implicit)

    def test_malformed_payloads_still_get_stable_keys(self):
        bad = {"source": "not a program ((("}
        assert request_key(bad) == request_key(dict(bad))
        assert request_key(bad) != request_key(make_payload())
        # Never raises, whatever the shape.
        assert request_key(None) == request_key(None)
        assert request_key([1, 2]) == request_key([1, 2])


class TestAppendReplay:
    def test_round_trip(self, journal):
        payload = make_payload()
        assert journal.admitted("k1", payload)
        assert journal.completed("k1", {"status": "ok", "penalty": 4.0})
        assert journal.admitted("k2", make_payload(seed=1))
        assert journal.failed("k3", ValueError("boom"))

        replay = RequestJournal(journal.path).load()
        assert replay.completed == {"k1": {"status": "ok", "penalty": 4.0}}
        assert set(replay.orphans) == {"k2"}
        assert replay.failed == {"k3": ("ValueError", "boom")}
        assert replay.payloads["k1"] == payload
        assert replay.records == {"admitted": 2, "completed": 1, "failed": 1}
        assert not replay.corrupt_lines and not replay.torn_tail

    def test_later_records_win_per_key(self, journal):
        journal.admitted("k", make_payload())
        journal.failed("k", "first attempt died")
        # The client retried: the key is re-admitted and is an orphan
        # again — recovery must re-enqueue it, not trust the stale failure.
        journal.admitted("k", make_payload())
        replay = journal.load()
        assert set(replay.orphans) == {"k"}
        assert not replay.failed

    def test_missing_journal_replays_empty(self, tmp_path):
        replay = RequestJournal(tmp_path / "never-written.jsonl").load()
        assert not replay.completed and not replay.orphans
        assert not replay.torn_tail

    def test_records_carry_version_and_checksum(self, journal):
        journal.admitted("k", make_payload())
        record = json.loads(journal.path.read_text())
        assert record["v"] == JOURNAL_VERSION
        assert record["type"] == "admitted"
        assert len(record["sha"]) == 64


class TestCorruption:
    def test_torn_final_record_is_skipped_not_fatal(self, journal):
        journal.admitted("k1", make_payload())
        journal.completed("k1", {"status": "ok"})
        text = journal.path.read_text()
        journal.path.write_text(text[:-20])  # SIGKILL mid-append

        replay = RequestJournal(journal.path).load()
        assert replay.torn_tail
        assert replay.corrupt_lines == [2]
        # The completed record died on the way to disk: the key degrades
        # to an orphan and is re-solved — never silently lost.
        assert set(replay.orphans) == {"k1"}

    def test_next_append_seals_a_torn_stump(self, journal):
        journal.admitted("k1", make_payload())
        text = journal.path.read_text()
        journal.path.write_text(text[:-10])  # no trailing newline

        reopened = RequestJournal(journal.path)
        assert reopened.admitted("k2", make_payload(seed=1))
        replay = reopened.load()
        assert "k2" in replay.orphans
        assert replay.corrupt_lines == [1]
        assert not replay.torn_tail  # the tail itself is intact again

    def test_mid_file_tampering_is_corrupt_but_not_torn(self, journal):
        journal.admitted("k1", make_payload())
        journal.completed("k1", {"status": "ok"})
        lines = journal.path.read_text().splitlines()
        lines[0] = lines[0].replace('"admitted"', '"admitted "')
        journal.path.write_text("\n".join(lines) + "\n")

        replay = RequestJournal(journal.path).load()
        assert replay.corrupt_lines == [1]
        assert not replay.torn_tail
        assert set(replay.completed) == {"k1"}

    def test_injected_torn_tail_fault(self, journal):
        with faults.inject_faults(journal_torn_tail=2) as plan:
            journal.admitted("k1", make_payload())
            journal.completed("k1", {"status": "ok"})  # 2nd append: torn
        assert plan.trips("journal_torn") == 1
        replay = journal.load()
        assert replay.torn_tail and replay.corrupt_lines == [2]
        assert set(replay.orphans) == {"k1"}


class TestDegradedDurability:
    def test_io_error_flips_degraded_and_keeps_serving(self, journal):
        with faults.inject_faults(journal_io_error=True) as plan:
            assert journal.admitted("k1", make_payload()) is False
        assert plan.trips("journal_io") == 1
        assert journal.degraded
        assert journal.stats.io_errors == 1
        # Degraded is sticky: later appends are dropped, not attempted.
        assert journal.completed("k1", {"status": "ok"}) is False
        assert journal.stats.dropped == 1
        assert not journal.path.exists()

    def test_io_error_on_nth_append_keeps_earlier_records(self, journal):
        with faults.inject_faults(journal_io_error=2):
            assert journal.admitted("k1", make_payload())
            assert journal.completed("k1", {"status": "ok"}) is False
        replay = RequestJournal(journal.path).load()
        assert set(replay.orphans) == {"k1"}  # the admit survived

    def test_degradation_counts_the_stable_counter(self, journal):
        from repro import obs

        before = obs.counters(stable_only=True).get(
            "service.journal_degraded", 0
        )
        with faults.inject_faults(journal_io_error=True):
            journal.admitted("k1", make_payload())
        after = obs.counters(stable_only=True).get(
            "service.journal_degraded", 0
        )
        assert after == before + 1


class TestCompaction:
    def test_appends_below_threshold_never_compact(self, tmp_path):
        journal = RequestJournal(
            tmp_path / "journal.jsonl", compact_bytes=1_000_000
        )
        for i in range(10):
            journal.admitted(f"k{i}", make_payload(seed=i))
        assert journal.stats.compactions == 0

    def test_size_trigger_rewrites_only_live_records(self, tmp_path):
        journal = RequestJournal(
            tmp_path / "journal.jsonl", compact_bytes=4096, keep_completed=2
        )
        # Lots of superseded history: completions beyond keep_completed,
        # terminal failures, and two orphans that must survive verbatim.
        for i in range(20):
            journal.admitted(f"done{i}", make_payload(seed=i))
            journal.completed(f"done{i}", {"status": "ok", "seed": i})
        journal.admitted("orphan-a", make_payload(seed=100))
        journal.failed("gone", RuntimeError("boom"))
        journal.admitted("orphan-b", make_payload(seed=101))
        journal.compact()
        assert journal.stats.compactions >= 1
        assert journal.stats.compacted_bytes > 0

        replay = RequestJournal(journal.path).load()
        # Orphans preserved with their payloads, in place.
        assert set(replay.orphans) == {"orphan-a", "orphan-b"}
        assert replay.orphans["orphan-a"] == make_payload(seed=100)
        # Only the most recent completions survive, re-verifiable
        # (payload retained alongside the response).
        assert set(replay.completed) == {"done18", "done19"}
        assert replay.completed["done19"] == {"status": "ok", "seed": 19}
        assert replay.payloads["done19"] == make_payload(seed=19)
        # Terminal failures are dropped: the retry policy owns those.
        assert replay.failed == {}
        assert replay.corrupt_lines == []

    def test_automatic_trigger_fires_past_threshold(self, tmp_path):
        journal = RequestJournal(
            tmp_path / "journal.jsonl", compact_bytes=2048, keep_completed=1
        )
        for i in range(30):
            journal.admitted(f"k{i}", make_payload(seed=i))
            journal.completed(f"k{i}", {"status": "ok"})
        assert journal.stats.compactions >= 1
        assert journal.path.stat().st_size < 2048 + 4096

    def test_compacted_journal_stays_torn_tail_tolerant(self, tmp_path):
        journal = RequestJournal(
            tmp_path / "journal.jsonl", compact_bytes=4096, keep_completed=4
        )
        for i in range(8):
            journal.admitted(f"k{i}", make_payload(seed=i))
            journal.completed(f"k{i}", {"status": "ok"})
        journal.admitted("orphan", make_payload(seed=50))
        journal.compact()
        # A crash mid-append after compaction tears the last line.
        with journal.path.open("a") as handle:
            handle.write('{"v": 1, "type": "admitted", "key": "torn')
        replay = RequestJournal(journal.path).load()
        assert replay.torn_tail
        assert "orphan" in replay.orphans
        # And the journal keeps appending cleanly past the stump.
        journal2 = RequestJournal(journal.path)
        journal2.admitted("after", make_payload(seed=51))
        replay2 = RequestJournal(journal.path).load()
        assert "after" in replay2.orphans

    def test_compaction_counts_the_stable_counter(self, tmp_path):
        from repro import obs

        before = obs.counters(stable_only=True).get(
            "service.journal_compacted", 0
        )
        journal = RequestJournal(tmp_path / "journal.jsonl", compact_bytes=64)
        journal.admitted("k", make_payload())
        journal.completed("k", {"status": "ok"})
        after = obs.counters(stable_only=True).get(
            "service.journal_compacted", 0
        )
        assert journal.stats.compactions >= 1
        assert after > before

    def test_degraded_journal_never_compacts(self, tmp_path):
        journal = RequestJournal(tmp_path / "journal.jsonl", compact_bytes=64)
        journal.degraded = True
        journal.admitted("k", make_payload())
        assert journal.compact() is False
        assert journal.stats.compactions == 0

    def test_snapshot_reports_compaction_stats(self, tmp_path):
        journal = RequestJournal(tmp_path / "journal.jsonl", compact_bytes=64)
        journal.admitted("k", make_payload())
        journal.completed("k", {"status": "ok"})
        snap = journal.snapshot()
        assert snap["compactions"] == journal.stats.compactions >= 1
        # Everything was live, so little to reclaim — but it's reported.
        assert snap["compacted_bytes"] == journal.stats.compacted_bytes
