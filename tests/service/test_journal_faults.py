"""Resource-exhaustion journal faults: ENOSPC, fsync stalls, torn mid-file."""

import time

import pytest

from repro import faults
from repro.service.journal import RequestJournal

from .conftest import make_payload


@pytest.fixture
def journal(tmp_path):
    return RequestJournal(tmp_path / "journal.jsonl")


class TestJournalEnospc:
    def test_enospc_degrades_and_leaves_a_tolerable_torn_tail(self, journal):
        journal.admitted("k1", make_payload())
        with faults.inject_faults(journal_enospc=1):
            # Disk fills mid-append: half the record lands, no newline.
            assert journal.admitted("k2", make_payload(seed=1)) is False
        assert journal.degraded
        assert journal.stats.io_errors == 1
        # Degradation is sticky: later appends drop, never raise.
        assert journal.completed("k1", {"status": "ok"}) is False
        assert journal.stats.dropped == 1

        # The partial record is exactly the torn tail recovery tolerates:
        # the durable prefix replays, the stump reads as wear, and no
        # interior corruption is reported.
        replay = RequestJournal(journal.path).load()
        assert set(replay.orphans) == {"k1"}
        assert replay.torn_tail
        assert replay.interior_corrupt == []

    def test_append_after_recovery_seals_the_enospc_stump(self, journal):
        journal.admitted("k1", make_payload())
        with faults.inject_faults(journal_enospc=1):
            journal.admitted("k2", make_payload(seed=1))
        # A fresh journal object (think: restarted process, disk freed)
        # must seal the stump before appending, or the next record would
        # fuse with the partial line and corrupt itself.
        fresh = RequestJournal(journal.path)
        fresh.load()
        assert fresh.admitted("k3", make_payload(seed=2))
        replay = RequestJournal(journal.path).load()
        assert set(replay.orphans) == {"k1", "k3"}
        assert not replay.torn_tail

    def test_enospc_counts_one_consultation_per_append(self, journal):
        with faults.record_sites() as rec:
            journal.admitted("k1", make_payload())
            journal.completed("k1", {"status": "ok"})
        assert rec.counts()[("journal_enospc", "main")] == 2


class TestFsyncStall:
    def test_stall_delays_the_append_but_keeps_it_durable(self, journal):
        start = time.monotonic()
        with faults.inject_faults(fsync_stall=1):
            assert journal.admitted("k1", make_payload())
        elapsed = time.monotonic() - start
        assert elapsed >= faults.FSYNC_STALL_S
        assert not journal.degraded
        replay = RequestJournal(journal.path).load()
        assert set(replay.orphans) == {"k1"}

    def test_unarmed_appends_do_not_stall(self, journal):
        start = time.monotonic()
        journal.admitted("k1", make_payload())
        assert time.monotonic() - start < faults.FSYNC_STALL_S


class TestTornWriteMidFile:
    def fill(self, journal, n=6):
        for i in range(n):
            journal.admitted(f"k{i}", make_payload(seed=i))

    def test_interior_corruption_is_detected_and_demoted(self, journal):
        self.fill(journal)
        with faults.inject_faults(torn_write_mid_file=1):
            assert journal.completed("k0", {"status": "ok"})
        replay = RequestJournal(journal.path).load()
        # One interior line was zeroed: it is counted as interior
        # corruption, not mistaken for a torn tail, and the key whose
        # record was destroyed is demoted to an orphan (re-solved on
        # recovery) instead of served from damaged bytes.
        assert len(replay.interior_corrupt) == 1
        assert replay.interior_corrupt == replay.corrupt_lines
        assert not replay.torn_tail
        # The completion for k0 landed *before* the corruption strike, so
        # it survives unless it was the damaged line.
        survivors = set(replay.completed) | set(replay.orphans)
        assert len(survivors) == 6 - 1 or "k0" in replay.completed

    def test_corruption_never_fails_the_append_itself(self, journal):
        self.fill(journal, n=3)
        with faults.inject_faults(torn_write_mid_file=1):
            assert journal.completed("k1", {"status": "ok"}) is True
        assert not journal.degraded


class TestServiceRecoveryCountsInteriorCorruption:
    def test_replay_rejected_counter(self, tmp_path):
        from repro.service.core import AlignmentService, ServiceConfig

        journal_path = tmp_path / "service.jsonl"
        journal = RequestJournal(journal_path)
        for i in range(5):
            journal.admitted(f"k{i}", make_payload(seed=i))
        with faults.inject_faults(torn_write_mid_file=1):
            journal.admitted("k5", make_payload(seed=5))

        service = AlignmentService(
            ServiceConfig(journal_path=str(journal_path))
        ).start()
        try:
            deadline = time.monotonic() + 30.0
            while service.snapshot()["recovering"]:
                assert time.monotonic() < deadline, "recovery hung"
                time.sleep(0.05)
            snapshot = service.snapshot()
            assert snapshot["recovery"]["interior_corrupt"] == 1
            assert snapshot["counters"]["service.replay_rejected"] == 1
        finally:
            service.drain(timeout=30.0)
