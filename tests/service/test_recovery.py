"""Crash recovery: journal replay, idempotent coalescing, client retry.

These tests simulate the crash by *not* draining: a first service
instance journals admissions/completions and is abandoned, a second
instance replays the same journal file — exactly the state a SIGKILL
leaves behind (the real-signal version lives in
``benchmarks/service_check.py --scenario recovery``).
"""

import json
import threading
import time

import pytest

from repro.errors import ServiceRetryExhaustedError
from repro.service import AlignmentService, ServiceConfig
from repro.service.client import (
    RetryPolicy,
    get_json,
    request_with_retry,
)
from repro.service.http_server import AlignmentHTTPServer
from repro.service.journal import RequestJournal, request_key

from .conftest import make_payload


def start_and_await(config: ServiceConfig, timeout=60.0) -> AlignmentService:
    service = AlignmentService(config).start()
    deadline = time.monotonic() + timeout
    while service.recovering and time.monotonic() < deadline:
        time.sleep(0.01)
    assert not service.recovering, "journal replay did not finish"
    return service


class TestRecovery:
    def test_completed_requests_survive_a_crash(self, tmp_path):
        journal_path = str(tmp_path / "journal.jsonl")
        first = AlignmentService(
            ServiceConfig(capacity=4, journal_path=journal_path)
        ).start()
        original = first.align(make_payload(), timeout=120)
        assert original["status"] == "ok"
        # No drain: the process "dies" with the journal as sole survivor.

        second = start_and_await(
            ServiceConfig(capacity=4, journal_path=journal_path)
        )
        try:
            replayed = second.align(make_payload(), timeout=120)
            assert replayed["served_from"] == "journal"
            assert replayed["layouts"] == original["layouts"]
            assert replayed["penalty"] == original["penalty"]
            # Served without re-solving: the worker completed nothing.
            assert second.stats.completed == 0
            assert second.stats.recovered == 1
            assert second.stats.deduped == 1
            recovery = second.snapshot()["recovery"]
            assert recovery["replayed_completed"] == 1
            assert recovery["reverify_failed"] == 0
        finally:
            assert first.drain(timeout=30)
            assert second.drain(timeout=30)

    def test_orphaned_admissions_are_reenqueued_and_solved(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        payload = make_payload(seed=11)
        key = request_key(payload)
        # A crash after admission, before completion: the journal holds
        # an admitted record with no terminal record.
        RequestJournal(journal_path).admitted(key, payload)

        service = start_and_await(
            ServiceConfig(capacity=4, journal_path=str(journal_path))
        )
        try:
            assert service.snapshot()["recovery"]["reenqueued"] == 1
            # The replayed request bypasses admission accounting: the new
            # life's ``submitted == admitted + shed`` starts from zero.
            assert service.gate.submitted == 0
            assert service.gate.admitted == 0
            # A duplicate submission coalesces onto the recovered work
            # (or its cached result) instead of re-solving.
            response = service.align(make_payload(seed=11), timeout=120)
            assert response["status"] == "ok"
            assert service.stats.deduped == 1
            replay = RequestJournal(journal_path).load()
            assert key in replay.completed
            assert not replay.orphans
        finally:
            assert service.drain(timeout=30)

    def test_tampered_completed_record_is_rejected_and_resolved(
        self, tmp_path
    ):
        from repro.service.journal import _record_sha

        journal_path = tmp_path / "journal.jsonl"
        first = AlignmentService(
            ServiceConfig(capacity=4, journal_path=str(journal_path))
        ).start()
        original = first.align(make_payload(), timeout=120)
        assert first.drain(timeout=30)

        # Corrupt the recorded cost but keep the checksum valid: the
        # bytes parse, so only semantic re-verification can catch it.
        lines = journal_path.read_text().splitlines()
        doctored = []
        for line in lines:
            record = json.loads(line)
            if record["type"] == "completed":
                for name in record["response"]["costs"]:
                    record["response"]["costs"][name] = -1.0
                del record["sha"]
                record["sha"] = _record_sha(record)
                line = json.dumps(record, sort_keys=True,
                                  separators=(",", ":"))
            doctored.append(line)
        journal_path.write_text("\n".join(doctored) + "\n")

        second = start_and_await(
            ServiceConfig(capacity=4, journal_path=str(journal_path))
        )
        try:
            recovery = second.snapshot()["recovery"]
            assert recovery["reverify_failed"] == 1
            assert recovery["replayed_completed"] == 0
            assert recovery["reenqueued"] == 1  # re-solved instead
            response = second.align(make_payload(), timeout=120)
            assert response["status"] == "ok"
            assert "served_from" not in response
            assert response["layouts"] == original["layouts"]
        finally:
            assert second.drain(timeout=30)

    def test_torn_tail_journal_recovers(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        first = AlignmentService(
            ServiceConfig(capacity=4, journal_path=str(journal_path))
        ).start()
        first.align(make_payload(), timeout=120)
        assert first.drain(timeout=30)
        text = journal_path.read_text()
        journal_path.write_text(text[:-30])  # SIGKILL mid-append

        second = start_and_await(
            ServiceConfig(capacity=4, journal_path=str(journal_path))
        )
        try:
            recovery = second.snapshot()["recovery"]
            assert recovery["torn_tail"] is True
            assert recovery["corrupt_lines"] == 1
            # The torn completion demotes the key to an orphan: re-solved,
            # not lost, not served from corrupt bytes.
            assert recovery["reenqueued"] == 1
            response = second.align(make_payload(), timeout=120)
            assert response["status"] == "ok"
        finally:
            assert second.drain(timeout=30)


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_dedup_counters_are_identical_across_jobs(self, tmp_path, jobs):
        """Duplicate-key coalescing is request-content based: the dedup
        and journal counters must not depend on the align worker count."""
        service = AlignmentService(ServiceConfig(
            capacity=8, jobs=jobs,
            journal_path=str(tmp_path / f"journal-{jobs}.jsonl"),
        )).start()
        try:
            payloads = [
                make_payload(),            # unique
                make_payload(seed=1),      # unique
                make_payload(),            # duplicate of #1
                make_payload(seed=1),      # duplicate of #2
                make_payload(),            # duplicate of #1 again
            ]
            handles = [service.submit(p) for p in payloads]
            results = [h.result(timeout=120) for h in handles]
            assert all(r["status"] == "ok" for r in results)
            assert results[0]["layouts"] == results[2]["layouts"]
            assert results[0]["layouts"] == results[4]["layouts"]
            assert service.stats.deduped == 3
            assert service.journal.stats.admitted == 2
            assert service.journal.stats.completed == 2
            assert service.gate.submitted == 2  # dedup never hits the gate
        finally:
            assert service.drain(timeout=60)


class TestClientRetry:
    def test_backoff_schedule_is_deterministic(self):
        policy = RetryPolicy(attempts=6, base_delay_s=0.1, max_delay_s=2.0)
        delays = [policy.delay_s(i) for i in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 1.6]
        assert policy.delay_s(7) == 2.0  # capped

    def test_give_up_is_typed_with_the_last_outcome(self):
        slept = []
        with pytest.raises(ServiceRetryExhaustedError) as info:
            request_with_retry(
                "http://127.0.0.1:9",  # nothing listens on the discard port
                make_payload(),
                policy=RetryPolicy(attempts=3, base_delay_s=0.01),
                timeout=2.0,
                sleep=slept.append,
            )
        assert info.value.attempts == 3
        assert info.value.last_status is None
        assert info.value.last_error is not None
        assert slept == [0.01, 0.02]

    def test_retry_rides_through_a_server_restart(self, tmp_path):
        """A client retrying one payload spans stop → restart: the second
        server life answers it from the journal, not by re-solving."""
        journal_path = str(tmp_path / "journal.jsonl")
        service = AlignmentService(
            ServiceConfig(capacity=4, journal_path=journal_path)
        ).start()
        server = AlignmentHTTPServer(("127.0.0.1", 0), service)
        accept = threading.Thread(target=server.serve_forever, daemon=True)
        accept.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"

        first = request_with_retry(base, make_payload(), timeout=120)
        assert first[0] == 200 and first[1]["status"] == "ok"

        # Stop the first life completely (drain keeps the journal intact).
        server.shutdown()
        assert service.drain(timeout=30)
        server.server_close()
        accept.join(10)

        # Restart on the same port after a delay, while the client is
        # already retrying into the gap.
        def restart():
            time.sleep(0.4)
            service2 = AlignmentService(
                ServiceConfig(capacity=4, journal_path=journal_path)
            ).start()
            server2 = AlignmentHTTPServer((host, port), service2)
            threading.Thread(
                target=server2.serve_forever, daemon=True
            ).start()
            restarted["service"] = service2
            restarted["server"] = server2

        restarted: dict = {}
        restarter = threading.Thread(target=restart)
        restarter.start()
        try:
            status, body = request_with_retry(
                base,
                make_payload(),
                policy=RetryPolicy(attempts=30, base_delay_s=0.1,
                                   max_delay_s=0.5),
                timeout=120,
            )
            assert status == 200
            assert body["served_from"] == "journal"
            assert body["layouts"] == first[1]["layouts"]
            assert restarted["service"].stats.completed == 0
        finally:
            restarter.join(10)
            server2 = restarted.get("server")
            service2 = restarted.get("service")
            if server2 is not None:
                server2.shutdown()
                server2.server_close()
            if service2 is not None:
                assert service2.drain(timeout=30)

    def test_readyz_is_503_while_replaying(self, tmp_path, monkeypatch):
        """/readyz must answer ``recovering: true`` with 503 while the
        journal replay is still running."""
        journal_path = tmp_path / "journal.jsonl"
        first = AlignmentService(
            ServiceConfig(capacity=4, journal_path=str(journal_path))
        ).start()
        first.align(make_payload(), timeout=120)
        assert first.drain(timeout=30)

        # Slow the replay's verification step so the 503 window is
        # observable over real HTTP.
        import repro.service.core as core_mod

        original_verify = AlignmentService._verify_replayed

        def slow_verify(self, payload, response):
            time.sleep(1.0)
            return original_verify(self, payload, response)

        monkeypatch.setattr(
            core_mod.AlignmentService, "_verify_replayed", slow_verify
        )
        service = AlignmentService(
            ServiceConfig(capacity=4, journal_path=str(journal_path))
        )
        server = AlignmentHTTPServer(("127.0.0.1", 0), service)
        service.start()
        accept = threading.Thread(target=server.serve_forever, daemon=True)
        accept.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            status, body = get_json(base + "/readyz")
            assert status == 503
            assert body["recovering"] is True
            deadline = time.monotonic() + 60
            while service.recovering and time.monotonic() < deadline:
                time.sleep(0.05)
            status, body = get_json(base + "/readyz")
            assert status == 200
            assert body["recovering"] is False
        finally:
            server.shutdown()
            assert service.drain(timeout=30)
            server.server_close()
            accept.join(10)


class TestDrainDuringReplay:
    """SIGTERM arriving while recovery replay is still running: the
    drain must finish promptly with un-replayed orphans *cleanly
    abandoned* — left in the journal, byte-for-byte, for the next start
    — never half-processed.  (``serve()`` maps a clean drain to exit 0;
    the real-signal version lives in ``benchmarks/service_check.py``.)
    """

    def _journal_with_orphans(self, tmp_path, count=3):
        journal_path = tmp_path / "journal.jsonl"
        journal = RequestJournal(journal_path)
        for seed in range(count):
            payload = make_payload(seed=seed)
            journal.admitted(request_key(payload), payload)
        return journal_path

    def test_drain_before_replay_abandons_orphans_untouched(self, tmp_path):
        journal_path = self._journal_with_orphans(tmp_path)
        before = journal_path.read_bytes()

        service = AlignmentService(
            ServiceConfig(capacity=4, journal_path=str(journal_path))
        )
        # SIGTERM raced the start: admission is already closed when the
        # worker begins its replay.
        service.begin_drain()
        service.start()
        assert service.drain(timeout=30)  # == exit 0 in serve()
        recovery = service.snapshot()["recovery"]
        assert recovery["abandoned"] == 3
        assert recovery["reenqueued"] == 0
        # Abandoned means untouched: the journal is byte-for-byte the
        # crash state, so nothing was lost.
        assert journal_path.read_bytes() == before

    def test_next_start_recovers_abandoned_orphans(self, tmp_path):
        journal_path = self._journal_with_orphans(tmp_path, count=2)
        first = AlignmentService(
            ServiceConfig(capacity=4, journal_path=str(journal_path))
        )
        first.begin_drain()
        first.start()
        assert first.drain(timeout=30)

        second = start_and_await(
            ServiceConfig(capacity=4, journal_path=str(journal_path))
        )
        try:
            recovery = second.snapshot()["recovery"]
            assert recovery["reenqueued"] == 2
            assert recovery["abandoned"] == 0
            assert second.drain(timeout=60)
            replay = RequestJournal(journal_path).load()
            assert not replay.orphans  # all solved and journaled
        except BaseException:
            second.drain(timeout=30)
            raise

    def test_sigterm_mid_replay_finishes_clean_and_loses_nothing(
        self, tmp_path, monkeypatch
    ):
        """Drain lands *during* the replay: whatever was already
        re-enqueued completes, the rest stays journaled for next time."""
        import repro.service.core as core_mod

        journal_path = tmp_path / "journal.jsonl"
        journal = RequestJournal(journal_path)
        completed_payload = make_payload(seed=90)
        journal.admitted(request_key(completed_payload), completed_payload)
        orphans = [make_payload(seed=91), make_payload(seed=92)]
        for payload in orphans:
            journal.admitted(request_key(payload), payload)

        replaying = threading.Event()
        proceed = threading.Event()
        real_requeue = core_mod.AdmissionGate.requeue

        def gated_requeue(self, item):
            replaying.set()
            assert proceed.wait(30)
            return real_requeue(self, item)

        monkeypatch.setattr(core_mod.AdmissionGate, "requeue", gated_requeue)
        service = AlignmentService(
            ServiceConfig(capacity=4, journal_path=str(journal_path))
        ).start()
        assert replaying.wait(30)  # the first orphan is mid-requeue
        service.begin_drain()      # SIGTERM lands here
        proceed.set()
        assert service.drain(timeout=60)
        recovery = service.snapshot()["recovery"]
        assert recovery["reenqueued"] + recovery["abandoned"] == 3
        assert recovery["abandoned"] >= 1
        # Nothing is lost, whichever side of the drain each orphan
        # landed on: every admitted key is either completed in the
        # journal or still an orphan awaiting the next start.  (A
        # re-enqueued orphan the drain sentinel outraced stays an
        # orphan — abandoned in effect, never half-processed.)
        replay = RequestJournal(journal_path).load()
        keys = {
            request_key(p) for p in [completed_payload, *orphans]
        }
        assert set(replay.orphans) | set(replay.completed) == keys
        assert len(replay.orphans) >= recovery["abandoned"]
