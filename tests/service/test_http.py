"""The HTTP tier: endpoints, status mapping, drain visibility."""

import threading

import pytest

from repro.errors import (
    ArtifactIntegrityError,
    ProfileValidationError,
    ServiceOverloadError,
    ServiceUnavailableError,
    UsageError,
)
from repro.lang import LangError
from repro.service import AlignmentService, ServiceConfig
from repro.service.client import get_json, post_json, request_alignment
from repro.service.http_server import AlignmentHTTPServer, _status_for

from .conftest import make_payload


@pytest.fixture
def http_service():
    """A live HTTP server on an ephemeral port, drained at teardown."""
    service = AlignmentService(ServiceConfig(capacity=4))
    server = AlignmentHTTPServer(("127.0.0.1", 0), service)
    service.start()
    accept = threading.Thread(target=server.serve_forever, daemon=True)
    accept.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", service, server
    service.begin_drain()
    server.shutdown()
    assert service.drain(timeout=30)
    server.server_close()
    accept.join(10)


class TestStatusMapping:
    def test_taxonomy_is_the_status_code(self):
        assert _status_for(ServiceOverloadError("shed")) == 429
        assert _status_for(ServiceUnavailableError("draining")) == 503
        assert _status_for(UsageError("bad field")) == 400
        assert _status_for(LangError("parse error")) == 400
        assert _status_for(ProfileValidationError("NaN count")) == 400
        assert _status_for(ArtifactIntegrityError("checksum")) == 500
        assert _status_for(RuntimeError("boom")) == 500


class TestEndpoints:
    def test_healthz_and_readyz_green(self, http_service):
        base, _, _ = http_service
        assert get_json(base + "/healthz") == (200, {"status": "ok"})
        status, body = get_json(base + "/readyz")
        assert status == 200
        assert body["ready"] is True
        assert body["recovering"] is False
        assert body["durability"] is None  # no journal configured

    def test_counters_reports_snapshot(self, http_service):
        base, _, _ = http_service
        status, body = get_json(base + "/counters")
        assert status == 200
        assert body["gate"]["capacity"] == 4
        assert body["drained"] is False

    def test_unknown_paths_404(self, http_service):
        base, _, _ = http_service
        assert get_json(base + "/nope")[0] == 404
        assert post_json(base + "/nope", {})[0] == 404

    def test_align_round_trip(self, http_service):
        base, _, _ = http_service
        status, body = request_alignment(base, make_payload(), timeout=120)
        assert status == 200
        assert body["status"] == "ok"
        assert body["verified"] is True
        assert body["layouts"]["main"]

    def test_malformed_json_body_is_400(self, http_service):
        base, _, _ = http_service
        import urllib.request

        request = urllib.request.Request(
            base + "/align",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as reply:
                status = reply.status
        except urllib.error.HTTPError as exc:
            status = exc.code
        assert status == 400

    def test_client_errors_are_400_with_type(self, http_service):
        base, _, _ = http_service
        status, body = request_alignment(
            base, make_payload(source="proc main() {}"), timeout=60
        )
        assert status == 400
        assert body["type"] == "LangError"
        status, body = request_alignment(
            base, make_payload(method="quantum"), timeout=60
        )
        assert status == 400 and body["type"] == "UsageError"

    def test_shed_maps_to_429(self, http_service, monkeypatch):
        base, service, _ = http_service
        def always_shed(item, **kwargs):
            raise ServiceOverloadError("admission shed", queue_depth=4)

        monkeypatch.setattr(service.gate, "submit", always_shed)
        status, body = request_alignment(base, make_payload(), timeout=60)
        assert status == 429
        assert body["type"] == "ServiceOverloadError"


class TestRequestCLI:
    def test_round_trip_renders_a_table(self, http_service, tmp_path, capsys):
        from repro.cli import main as cli_main

        from .conftest import SERVICE_SOURCE

        base, _, _ = http_service
        source = tmp_path / "prog.mini"
        source.write_text(SERVICE_SOURCE)
        code = cli_main([
            "request", str(source), "--url", base,
            "--inputs", "1,2,3,4,5,6,7,8",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "served by" in out and "verified" in out

    def test_json_output_and_client_error_exit_codes(
        self, http_service, tmp_path, capsys
    ):
        from repro.cli import main as cli_main

        base, _, _ = http_service
        source = tmp_path / "bad.mini"
        source.write_text("proc main() {}")
        code = cli_main(["request", str(source), "--url", base])
        captured = capsys.readouterr()
        assert code == 2  # 400-class: the request is wrong
        assert "LangError" in captured.err or "error" in captured.err

    def test_unreachable_server_is_a_runtime_error(self, tmp_path, capsys):
        from .conftest import SERVICE_SOURCE
        from repro.cli import main as cli_main

        source = tmp_path / "prog.mini"
        source.write_text(SERVICE_SOURCE)
        code = cli_main([
            "request", str(source), "--url", "http://127.0.0.1:9",
            "--timeout", "5",
        ])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err


class TestJournalOverHTTP:
    @pytest.fixture
    def journaled_http_service(self, tmp_path):
        """Like ``http_service`` but with a write-ahead journal armed."""
        service = AlignmentService(ServiceConfig(
            capacity=4, journal_path=str(tmp_path / "journal.jsonl")
        ))
        server = AlignmentHTTPServer(("127.0.0.1", 0), service)
        service.start()
        accept = threading.Thread(target=server.serve_forever, daemon=True)
        accept.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}", service, server
        service.begin_drain()
        server.shutdown()
        assert service.drain(timeout=30)
        server.server_close()
        accept.join(10)

    def test_readyz_reports_durability_on(self, journaled_http_service):
        base, _, _ = journaled_http_service
        from repro.service.client import wait_ready

        assert wait_ready(base)
        status, body = get_json(base + "/readyz")
        assert status == 200
        assert body == {
            "ready": True, "recovering": False, "durability": "on"
        }

    def test_counters_exposes_journal_health(self, journaled_http_service):
        base, _, _ = journaled_http_service
        assert request_alignment(base, make_payload(), timeout=120)[0] == 200
        status, body = get_json(base + "/counters")
        assert status == 200
        journal = body["journal"]
        assert journal["degraded"] is False
        assert journal["admitted"] == 1
        assert journal["completed"] == 1
        assert body["recovery"] is not None  # replay ran (empty journal)
        assert body["deduped"] == 0

    def test_duplicate_request_dedups_over_http(self, journaled_http_service):
        base, service, _ = journaled_http_service
        first = request_alignment(base, make_payload(), timeout=120)
        second = request_alignment(base, make_payload(), timeout=120)
        assert first[0] == second[0] == 200
        assert first[1]["layouts"] == second[1]["layouts"]
        assert service.stats.deduped == 1
        # The journal holds one admitted/completed pair, not two.
        assert service.journal.stats.admitted == 1
        assert service.journal.stats.completed == 1


class TestDrainOverHTTP:
    def test_drain_flips_readyz_keeps_healthz(self, http_service):
        base, service, _ = http_service
        assert request_alignment(base, make_payload(), timeout=120)[0] == 200
        service.begin_drain()
        assert get_json(base + "/readyz")[0] == 503
        assert get_json(base + "/healthz")[0] == 200
        status, body = request_alignment(base, make_payload(), timeout=60)
        assert status == 503
        assert body["type"] == "ServiceUnavailableError"


class TestRetryAfter:
    def test_shed_429_carries_the_gate_estimate(self, http_service, monkeypatch):
        from repro.errors import ServiceOverloadError as Overload
        from repro.service.client import post_json_full

        base, service, _ = http_service

        def always_shed(item, **kwargs):
            raise Overload("admission shed", queue_depth=4, retry_after_s=2.4)

        monkeypatch.setattr(service.gate, "submit", always_shed)
        status, _body, headers = post_json_full(
            base + "/align", make_payload(), timeout=60
        )
        assert status == 429
        assert headers["retry-after"] == "2"

    def test_draining_503_defaults_to_one_second(self, http_service):
        from repro.service.client import post_json_full

        base, service, _ = http_service
        assert request_alignment(base, make_payload(), timeout=120)[0] == 200
        service.begin_drain()
        status, _body, headers = post_json_full(
            base + "/align", make_payload(), timeout=60
        )
        assert status == 503
        assert headers["retry-after"] == "1"

    def test_success_has_no_retry_after(self, http_service):
        from repro.service.client import post_json_full

        base, _, _ = http_service
        status, _body, headers = post_json_full(
            base + "/align", make_payload(), timeout=120
        )
        assert status == 200
        assert "retry-after" not in headers


class TestClientHonorsRetryAfter:
    def test_header_replaces_the_schedule_delay(self):
        from repro.service.client import RetryPolicy as Policy

        policy = Policy(attempts=5, base_delay_s=0.1, max_delay_s=2.0)
        assert policy.honor_retry_after("1.5", attempt=1) == 1.5
        # Capped: a server hint never stretches the deterministic cap.
        assert policy.honor_retry_after("30", attempt=1) == 2.0
        # Missing or malformed header falls back to the schedule.
        assert policy.honor_retry_after(None, attempt=2) == policy.delay_s(2)
        assert policy.honor_retry_after("soon", attempt=2) == policy.delay_s(2)
        assert policy.honor_retry_after("-3", attempt=3) == policy.delay_s(3)

    def test_http_date_form_is_honored(self):
        """RFC 9110's second spelling: an HTTP-date, honored as the delta
        to now (still capped), and a date already past floors at zero."""
        from datetime import datetime, timedelta, timezone
        from email.utils import format_datetime

        from repro.service.client import RetryPolicy as Policy

        policy = Policy(attempts=5, base_delay_s=0.1, max_delay_s=2.0)
        soon = format_datetime(
            datetime.now(timezone.utc) + timedelta(seconds=90), usegmt=True
        )
        assert policy.honor_retry_after(soon, attempt=1) == 2.0  # capped
        near = format_datetime(
            datetime.now(timezone.utc) + timedelta(seconds=1), usegmt=True
        )
        assert 0.0 <= policy.honor_retry_after(near, attempt=1) <= 1.0
        past = format_datetime(
            datetime.now(timezone.utc) - timedelta(hours=3), usegmt=True
        )
        assert policy.honor_retry_after(past, attempt=1) == 0.0

    def test_malformed_headers_never_raise(self):
        """Regression: ``float(header)`` used to propagate ValueError (and
        ``nan``/``inf`` slipped through the float parse) — a proxy's junk
        header could kill the retry loop mid-flight.  Every hostile
        spelling must quietly fall back to the schedule."""
        from repro.service.client import RetryPolicy as Policy

        policy = Policy(attempts=5, base_delay_s=0.1, max_delay_s=2.0)
        hostile = [
            "soon", "never", "", "   ", "nan", "NaN", "inf", "-inf",
            "Infinity", "-0.0001", "-3", "1e400", "0x10", "5 seconds",
            "Wed, 99 Foo 2099 99:99:99 GMT",  # unparseable date
            "Wed, 21 Oct 20155 07:28:00 GMT",  # absurd year
            "\x00",
        ]
        for header in hostile:
            delay = policy.honor_retry_after(header, attempt=2)
            assert delay == policy.delay_s(2), header
        # Non-string junk (a broken header dict upstream) is absent too.
        for junk in (object(), 3.5, b"2", ["2"]):
            assert policy.honor_retry_after(junk, attempt=1) == policy.delay_s(1)
        # Edge legitimate spellings stay usable.
        assert policy.honor_retry_after("0", attempt=3) == 0.0
        assert policy.honor_retry_after(" 1.25 ", attempt=3) == 1.25
        assert policy.honor_retry_after("-0", attempt=3) == 0.0

    def test_retry_loop_sleeps_the_server_hint(self, monkeypatch):
        import repro.service.client as client_mod
        from repro.service.client import RetryPolicy as Policy

        answers = iter([
            (429, {"type": "ServiceOverloadError"}, {"retry-after": "0.7"}),
            (429, {"type": "ServiceOverloadError"}, {}),
            (200, {"status": "ok"}, {}),
        ])
        monkeypatch.setattr(
            client_mod, "post_json_full",
            lambda url, payload, timeout: next(answers),
        )
        slept = []
        status, body = client_mod.request_with_retry(
            "http://example.invalid", {"x": 1},
            policy=Policy(attempts=5, base_delay_s=0.1, max_delay_s=2.0),
            sleep=slept.append,
        )
        assert status == 200 and body == {"status": "ok"}
        # First retry slept the header (0.7, not the schedule's 0.1);
        # second fell back to the deterministic schedule (0.2).
        assert slept == [0.7, 0.2]
