"""Fixtures for the alignment service tests."""

import pytest

from repro.service import AlignmentService, ServiceConfig

#: Small but non-trivial: a loop with branches gives the TSP aligner
#: real work while keeping each request fast.
SERVICE_SOURCE = """
fn main() {
  var i = 0;
  var acc = 0;
  var n = input_len();
  while (i < n) {
    var v = input(i);
    if (v % 2 == 0) { acc = acc + v; } else { acc = acc - 1; }
    if (v > 10) { acc = acc + 2; }
    i = i + 1;
  }
  output(acc);
  return acc;
}
"""


def make_payload(**overrides) -> dict:
    payload = {
        "source": SERVICE_SOURCE,
        "inputs": list(range(20)),
        "method": "tsp",
        "seed": 0,
    }
    payload.update(overrides)
    return payload


@pytest.fixture
def payload():
    return make_payload()


@pytest.fixture
def service():
    svc = AlignmentService(ServiceConfig(capacity=4)).start()
    yield svc
    svc.drain(timeout=30)
