"""The offline journal scrubber and its ``repro journal verify`` CLI."""

import json

import pytest

from repro import faults
from repro.cli import main
from repro.service.journal import RequestJournal
from repro.service.scrub import scrub_journal, scrub_path

from .conftest import make_payload


def write_clean(path, n=3):
    journal = RequestJournal(path)
    for i in range(n):
        journal.admitted(f"k{i}", make_payload(seed=i))
    journal.completed("k0", {"status": "ok"})
    return journal


class TestScrubJournal:
    def test_clean_journal(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        write_clean(path)
        scrub = scrub_journal(path)
        assert scrub.lines == 4
        assert scrub.records == {"admitted": 3, "completed": 1}
        assert scrub.completed == 1
        assert scrub.orphans == 2
        assert not scrub.corrupt and not scrub.torn_tail

    def test_missing_journal_is_an_empty_audit(self, tmp_path):
        scrub = scrub_journal(tmp_path / "never.jsonl")
        assert scrub.lines == 0 and not scrub.corrupt

    def test_torn_tail_is_wear_not_corruption(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        write_clean(path)
        with faults.inject_faults(journal_enospc=1):
            RequestJournal(path).admitted("kx", make_payload(seed=9))
        scrub = scrub_journal(path)
        assert scrub.torn_tail
        assert not scrub.corrupt
        assert scrub.interior_corrupt == []

    def test_interior_corruption_escalates(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        journal = write_clean(path, n=5)
        with faults.inject_faults(torn_write_mid_file=1):
            journal.completed("k1", {"status": "ok"})
        scrub = scrub_journal(path)
        assert scrub.corrupt
        assert len(scrub.interior_corrupt) == 1

    def test_scrub_path_directory_is_sorted(self, tmp_path):
        write_clean(tmp_path / "shard-1.jsonl")
        write_clean(tmp_path / "shard-0.jsonl")
        scrubs = scrub_path(tmp_path)
        assert [s.path for s in scrubs] == [
            str(tmp_path / "shard-0.jsonl"), str(tmp_path / "shard-1.jsonl"),
        ]

    def test_scrub_path_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            scrub_path(tmp_path / "nope.jsonl")


class TestJournalVerifyCLI:
    def test_clean_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.jsonl"
        write_clean(path)
        assert main(["journal", "verify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_corrupt_exit_two(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        journal = write_clean(path, n=5)
        with faults.inject_faults(torn_write_mid_file=1):
            journal.completed("k1", {"status": "ok"})
        assert main(["journal", "verify", str(path)]) == 2
        captured = capsys.readouterr()
        assert "CORRUPT" in captured.out
        assert "interior" in captured.err

    def test_torn_tail_warns_but_passes(self, tmp_path, capsys):
        path = tmp_path / "torn.jsonl"
        write_clean(path)
        with faults.inject_faults(journal_enospc=1):
            RequestJournal(path).admitted("kx", make_payload(seed=9))
        assert main(["journal", "verify", str(path)]) == 0
        captured = capsys.readouterr()
        assert "torn-tail" in captured.out

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "clean.jsonl"
        write_clean(path)
        assert main(["journal", "verify", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["completed"] == 1
        assert data[0]["corrupt"] is False

    def test_directory_scrub(self, tmp_path):
        write_clean(tmp_path / "shard-0.jsonl")
        write_clean(tmp_path / "shard-1.jsonl")
        assert main(["journal", "verify", str(tmp_path)]) == 0

    def test_missing_path_exit_one(self, tmp_path, capsys):
        assert main(["journal", "verify", str(tmp_path / "nope.jsonl")]) == 1
