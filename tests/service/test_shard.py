"""The sharded serving tier: routing, isolation, restart, hedging."""

import threading
import time

import pytest

from repro.errors import (
    ServiceUnavailableError,
    ShardFailoverError,
)
from repro.faults import inject_faults
from repro.service import (
    ServiceConfig,
    ShardSupervisor,
    ShardTierConfig,
    hedge_sibling,
    request_key,
    route_shard,
)
from repro.service.http_server import _status_for

from .conftest import make_payload


def make_tier(tmp_path=None, **overrides) -> ShardSupervisor:
    config = dict(
        shards=2,
        journal_dir=str(tmp_path / "journals") if tmp_path else None,
        probe_interval_s=0.02,
        wedge_timeout_s=0.3,
        service=ServiceConfig(capacity=8),
    )
    config.update(overrides)
    return ShardSupervisor(ShardTierConfig(**config)).start()


def payload_for_shard(index: int, shards: int = 2) -> dict:
    """A payload whose idempotency key routes to shard ``index``."""
    for seed in range(200):
        payload = make_payload(seed=seed, method="greedy")
        if route_shard(request_key(payload), shards) == index:
            return payload
    raise AssertionError(f"no seed routed to shard {index}")


def await_epoch(sup, index, epoch, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        worker = sup._workers[index]
        if worker.epoch >= epoch and worker.state == "running":
            return
        time.sleep(0.01)
    raise AssertionError(f"shard {index} never reached epoch {epoch}")


class TestRouting:
    def test_route_is_deterministic_and_in_range(self):
        keys = [request_key(make_payload(seed=s)) for s in range(32)]
        for shards in (1, 2, 4, 7):
            routes = [route_shard(k, shards) for k in keys]
            assert routes == [route_shard(k, shards) for k in keys]
            assert all(0 <= r < shards for r in routes)
        # The hash actually spreads keys (not all on one shard).
        assert len({route_shard(k, 4) for k in keys}) > 1

    def test_duplicates_route_to_the_same_shard(self):
        a = request_key(make_payload(seed=3))
        b = request_key(make_payload(seed=3))
        assert route_shard(a, 4) == route_shard(b, 4)

    def test_sibling_is_deterministic_and_distinct(self):
        key = request_key(make_payload())
        primary = route_shard(key, 4)
        sibling = hedge_sibling(key, primary, 4)
        assert sibling != primary
        assert sibling == hedge_sibling(key, primary, 4)
        # A single shard has no sibling to hedge to.
        assert hedge_sibling(key, 0, 1) == 0

    def test_tier_routes_by_key(self, tmp_path):
        sup = make_tier(tmp_path)
        try:
            payload = make_payload(method="greedy")
            expected = route_shard(request_key(payload), 2)
            request = sup.submit(payload)
            assert request.shard_index == expected
            assert request.result(120)["status"] == "ok"
        finally:
            assert sup.drain(30)


class TestTierServing:
    def test_round_trip_and_duplicate_coalescing(self, tmp_path):
        sup = make_tier(tmp_path)
        try:
            payload = make_payload(method="greedy")
            first = sup.align(payload, timeout=120)
            second = sup.align(payload, timeout=120)
            assert first["status"] == second["status"] == "ok"
            assert first["layouts"] == second["layouts"]
            totals = sup.snapshot()["totals"]
            assert totals["deduped"] == 1
            # One shard journaled one admitted/completed pair, total.
            journaled = sum(
                w.service.journal.stats.admitted for w in sup._workers
            )
            assert journaled == 1
        finally:
            assert sup.drain(30)

    def test_accounting_closes_across_shards(self, tmp_path):
        sup = make_tier(tmp_path)
        try:
            for seed in range(4):
                assert sup.align(
                    make_payload(seed=seed, method="greedy"), timeout=120
                )["status"] == "ok"
            totals = sup.snapshot()["totals"]
            assert totals["submitted"] == 4
            assert totals["submitted"] == totals["admitted"] + totals["shed"]
            assert totals["completed"] == 4
        finally:
            assert sup.drain(30)

    def test_drained_tier_refuses_typed(self, tmp_path):
        sup = make_tier(tmp_path)
        assert sup.drain(30)
        with pytest.raises(ServiceUnavailableError):
            sup.submit(make_payload(method="greedy"))

    def test_failover_error_when_every_shard_is_down(self):
        # Probes effectively off: dead shards stay dead.
        sup = make_tier(probe_interval_s=3600.0)
        sup.kill_shard(0)
        sup.kill_shard(1)
        deadline = time.monotonic() + 10
        while sup.healthy and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(ShardFailoverError):
            sup.submit(make_payload(method="greedy"))
        assert _status_for(ShardFailoverError("down")) == 503
        assert sup.drain(30)


class TestFailureIsolation:
    def test_dead_shard_is_detected_and_restarted(self, tmp_path):
        sup = make_tier(tmp_path)
        try:
            payload = payload_for_shard(0)
            assert sup.align(payload, timeout=120)["status"] == "ok"
            sup.kill_shard(0)
            await_epoch(sup, 0, 1)
            assert sup.stats.deaths == 1
            assert sup.stats.restarts == 1
            # The other shard never flinched.
            assert sup._workers[1].epoch == 0
            # The restarted shard serves the old answer from its journal.
            replayed = sup.align(payload, timeout=120)
            assert replayed["served_from"] == "journal"
        finally:
            assert sup.drain(30)

    def test_wedged_shard_is_detected_and_restarted(self, tmp_path):
        sup = make_tier(tmp_path, wedge_timeout_s=0.2)
        try:
            sup.wedge_shard(0, seconds=30.0)
            deadline = time.monotonic() + 10
            while sup.stats.wedges == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sup.stats.wedges == 1
            await_epoch(sup, 0, 1)
            assert sup.align(
                payload_for_shard(0), timeout=120
            )["status"] == "ok"
        finally:
            assert sup.drain(30)

    def test_stranded_request_lands_via_recovery_and_failover(
        self, tmp_path, monkeypatch
    ):
        """Kill a shard with work admitted but unprocessed: the journal
        orphan is replayed by the replacement and the caller's stale
        handle re-lands on the new epoch without double-counting."""
        import repro.service.core as core_mod

        release = threading.Event()
        stalled = threading.Event()
        first_call = threading.Event()
        real_compile = core_mod.compile_source

        def gated_compile(source):
            if not first_call.is_set():
                first_call.set()
                stalled.set()
                assert release.wait(30)
            return real_compile(source)

        monkeypatch.setattr(core_mod, "compile_source", gated_compile)
        sup = make_tier(tmp_path, probe_interval_s=0.02)
        try:
            blocker = payload_for_shard(0)
            victim = None
            for seed in range(200, 400):
                candidate = make_payload(seed=seed, method="greedy")
                if route_shard(request_key(candidate), 2) == 0 and (
                    request_key(candidate) != request_key(blocker)
                ):
                    victim = candidate
                    break
            assert victim is not None

            first = sup.submit(blocker)   # stalls the shard-0 worker
            assert stalled.wait(30)
            second = sup.submit(victim)   # journaled, queued, stranded
            sup.kill_shard(0)
            release.set()
            # Both requests resolve: the blocker finishes in the dying
            # life (or is replayed), the victim rides journal recovery
            # plus the handle's epoch-change resubmit.
            assert first.result(120)["status"] == "ok"
            assert second.result(120)["status"] == "ok"
            await_epoch(sup, 0, 1)
            totals = sup.snapshot()["totals"]
            assert totals["submitted"] == totals["admitted"] + totals["shed"]
            # Nothing left behind: the journal has no orphans.
            replay = sup._workers[0].service.journal.load()
            assert not replay.orphans
        finally:
            release.set()
            assert sup.drain(30)

    def test_retired_lives_keep_lifetime_accounting(self, tmp_path):
        sup = make_tier(tmp_path)
        try:
            payload = payload_for_shard(0)
            assert sup.align(payload, timeout=120)["status"] == "ok"
            before = sup.snapshot()["totals"]
            sup.kill_shard(0)
            await_epoch(sup, 0, 1)
            after = sup.snapshot()["totals"]
            # The dead life's submitted/admitted/completed survive in the
            # tier totals via the retired ledger.
            assert after["submitted"] >= before["submitted"]
            assert after["completed"] >= before["completed"]
            assert after["submitted"] == after["admitted"] + after["shed"]
        finally:
            assert sup.drain(30)


class TestHedging:
    def test_slow_primary_is_hedged_and_sibling_wins(self, tmp_path):
        # Wedge detection is off (huge timeout): the wedge lasts long
        # enough that only hedging can answer quickly.
        sup = make_tier(
            tmp_path, hedge_after_ms=50.0, wedge_timeout_s=3600.0
        )
        try:
            payload = make_payload(method="greedy")
            primary = route_shard(request_key(payload), 2)
            sup.wedge_shard(primary, seconds=2.0)
            time.sleep(0.05)  # the wedge token reaches the worker loop
            request = sup.submit(payload)
            response = request.result(120)
            assert response["status"] == "ok"
            assert request.hedged
            assert request.winner == "hedge"
            assert sup.stats.hedged == 1
            assert sup.stats.hedge_wins == 1
        finally:
            assert sup.drain(30)

    def test_fast_primary_never_hedges(self, tmp_path):
        sup = make_tier(tmp_path, hedge_after_ms=10_000.0)
        try:
            request = sup.submit(make_payload(method="greedy"))
            assert request.result(120)["status"] == "ok"
            assert not request.hedged
            assert request.winner == "primary"
            assert sup.stats.hedged == 0
        finally:
            assert sup.drain(30)

    def test_hedging_never_double_computes_journaled_work(self, tmp_path):
        sup = make_tier(
            tmp_path, hedge_after_ms=50.0, wedge_timeout_s=3600.0
        )
        try:
            payload = make_payload(method="greedy")
            primary = route_shard(request_key(payload), 2)
            sup.wedge_shard(primary, seconds=2.0)
            time.sleep(0.05)
            first = sup.submit(payload)
            assert first.result(120)["status"] == "ok"
            assert first.winner == "hedge"
            # The answer is journaled on the sibling; a duplicate of the
            # same payload routed to the (recovered) primary must not
            # trigger a second solve on the sibling.
            sibling = hedge_sibling(request_key(payload), primary, 2)
            solved_before = sup._workers[sibling].service.stats.completed
            second = sup.submit(payload)
            assert second.result(120)["status"] == "ok"
            assert (
                sup._workers[sibling].service.stats.completed
                == solved_before
            )
        finally:
            assert sup.drain(30)


class TestChaosSites:
    def test_shard_death_fault_site_kills_and_tier_recovers(self, tmp_path):
        sup = make_tier(tmp_path)
        try:
            with inject_faults(shard_death=1):
                request = sup.submit(make_payload(method="greedy"))
            # The routed shard was killed right after the hand-off; the
            # handle still resolves via restart + journal recovery.
            assert request.result(120)["status"] == "ok"
            deadline = time.monotonic() + 10
            while sup.stats.deaths == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sup.stats.deaths == 1
            totals = sup.snapshot()["totals"]
            assert totals["submitted"] == totals["admitted"] + totals["shed"]
        finally:
            assert sup.drain(30)

    def test_shard_wedge_fault_site_trips_the_detector(self, tmp_path):
        sup = make_tier(tmp_path, wedge_timeout_s=0.2)
        try:
            with inject_faults(shard_wedge=1):
                request = sup.submit(make_payload(method="greedy"))
            assert request.result(120)["status"] == "ok"
            deadline = time.monotonic() + 10
            while sup.stats.wedges == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sup.stats.wedges == 1
        finally:
            assert sup.drain(30)
