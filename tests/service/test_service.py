"""End-to-end AlignmentService behaviour (no HTTP, no subprocess)."""

import pytest

from repro.errors import (
    ProfileMismatchError,
    ProfileValidationError,
    UsageError,
)
from repro.lang import LangError, compile_source, run_and_profile
from repro.service import AlignmentService, ServiceConfig

from .conftest import SERVICE_SOURCE


class TestHappyPath:
    def test_ok_response_shape(self, service, payload):
        response = service.align(payload, timeout=120)
        assert response["status"] == "ok"
        assert response["served_by"] == "tsp"
        assert response["verified"] is True
        assert response["quarantined"] == {}
        assert response["degraded"] == {}
        # The layout is a permutation of main's blocks, entry first.
        module = compile_source(SERVICE_SOURCE)
        cfg = module.program["main"].cfg
        order = response["layouts"]["main"]
        assert sorted(order) == sorted(cfg.block_ids)
        assert order[0] == cfg.entry
        # Single-procedure program: aligner cost == evaluated penalty.
        assert response["penalty"]["total"] == pytest.approx(
            sum(response["costs"].values())
        )

    def test_same_request_same_answer(self, service, payload):
        first = service.align(dict(payload), timeout=120)
        second = service.align(dict(payload), timeout=120)
        assert first["layouts"] == second["layouts"]
        assert first["costs"] == second["costs"]

    def test_bound_request_certifies_floor(self, service, payload):
        payload["bound"] = True
        response = service.align(payload, timeout=300)
        assert response["bounds"] is not None
        for name, cost in response["costs"].items():
            assert response["bounds"][name] <= cost + 1e-9

    def test_supplied_profile_matches_inputs_profile(self, service, payload):
        module = compile_source(SERVICE_SOURCE)
        _, profile = run_and_profile(module, payload["inputs"])
        by_inputs = service.align(dict(payload), timeout=120)
        payload.pop("inputs")
        payload["profile"] = profile.to_json()
        by_profile = service.align(payload, timeout=120)
        assert by_profile["status"] == "ok"
        assert by_profile["layouts"] == by_inputs["layouts"]
        assert by_profile["costs"] == by_inputs["costs"]


class TestClientErrors:
    """Bad requests surface as typed 400-equivalents, never 500s."""

    def test_non_object_payload(self, service):
        with pytest.raises(UsageError):
            service.align(["not", "an", "object"], timeout=60)

    def test_missing_source(self, service):
        with pytest.raises(UsageError, match="source"):
            service.align({"inputs": [1]}, timeout=60)

    def test_unknown_method(self, service, payload):
        payload["method"] = "quantum"
        with pytest.raises(UsageError, match="method"):
            service.align(payload, timeout=60)

    def test_bad_seed(self, service, payload):
        payload["seed"] = "lucky"
        with pytest.raises(UsageError, match="seed"):
            service.align(payload, timeout=60)

    def test_bad_deadline(self, service, payload):
        payload["deadline_ms"] = -10
        with pytest.raises(UsageError, match="deadline_ms"):
            service.align(payload, timeout=60)

    def test_syntax_error_is_a_lang_error(self, service, payload):
        payload["source"] = "proc main() {}"
        with pytest.raises(LangError):
            service.align(payload, timeout=60)

    def test_mismatched_profile_rejected(self, service, payload):
        from repro.profiles import ProgramProfile

        stray = ProgramProfile()
        stray.profile("helper").add(0, 1, 3)  # no such procedure here
        payload.pop("inputs")
        payload["profile"] = stray.to_json()
        with pytest.raises(ProfileMismatchError, match="helper"):
            service.align(payload, timeout=60)

    def test_poisoned_profile_rejected_with_edge(self, service, payload):
        payload.pop("inputs")
        payload["profile"] = (
            '{"call_counts": {}, "call_pairs": [], '
            '"procedures": {"main": [[0, 1, NaN]]}}'
        )
        with pytest.raises(ProfileValidationError, match=r"\(0,1\)"):
            service.align(payload, timeout=60)

    def test_worker_survives_bad_requests(self, service, payload):
        with pytest.raises(UsageError):
            service.align({"source": ""}, timeout=60)
        assert service.healthy and service.ready
        assert service.align(payload, timeout=120)["status"] == "ok"
        assert service.stats.failed == 1


class TestQuarantine:
    def test_verification_violations_withhold_layouts(
        self, fresh_tracer, payload, monkeypatch
    ):
        import repro.service.core as core_mod

        monkeypatch.setattr(
            core_mod,
            "verify_layouts",
            lambda *args, **kwargs: ["main: planted violation"],
        )
        service = AlignmentService(ServiceConfig(capacity=2)).start()
        try:
            response = service.align(payload, timeout=120)
        finally:
            assert service.drain(timeout=30)
        assert response["status"] == "quarantined"
        assert response["verified"] is False
        assert response["violations"] == ["main: planted violation"]
        assert "layouts" not in response and "costs" not in response
        assert service.stats.quarantined == 1
        assert service.snapshot()["counters"]["service.quarantined"] == 1

    def test_verification_can_be_disabled(self, payload):
        service = AlignmentService(
            ServiceConfig(capacity=2, verify=False)
        ).start()
        try:
            response = service.align(payload, timeout=120)
        finally:
            assert service.drain(timeout=30)
        assert response["status"] == "ok"
        assert response["verified"] is False


class TestConfig:
    def test_default_deadline_applies_when_request_has_none(self, payload):
        service = AlignmentService(
            ServiceConfig(capacity=2, default_deadline_ms=60_000.0)
        ).start()
        try:
            inherited = service.align(dict(payload), timeout=120)
            payload["deadline_ms"] = 30_000
            explicit = service.align(payload, timeout=120)
        finally:
            assert service.drain(timeout=30)
        assert inherited["deadline_ms"] == 60_000.0
        assert explicit["deadline_ms"] == 30_000.0


@pytest.fixture
def fresh_tracer():
    """Isolate counter assertions from the process-wide default tracer."""
    from repro import obs

    previous = obs.tracer()
    tracer = obs.Tracer()
    obs.install_tracer(tracer)
    yield tracer
    obs.install_tracer(previous)


class TestSnapshot:
    def test_snapshot_accounts_for_the_story_so_far(
        self, fresh_tracer, payload
    ):
        service = AlignmentService(ServiceConfig(capacity=4)).start()
        try:
            service.align(payload, timeout=120)
            snapshot = service.snapshot()
        finally:
            assert service.drain(timeout=30)
        assert snapshot["completed"] == 1
        assert snapshot["gate"]["admitted"] == 1
        assert snapshot["gate"]["shed"] == 0
        assert snapshot["counters"]["service.admitted"] == 1
        assert snapshot["counters"]["service.completed"] == 1
        assert "tsp" in snapshot["breakers"]
        assert snapshot["drained"] is False

    def test_drain_is_idempotent_and_counted(self, fresh_tracer, payload):
        service = AlignmentService(ServiceConfig(capacity=2)).start()
        service.align(payload, timeout=120)
        assert service.drain(timeout=30)
        assert service.drain(timeout=30)  # second drain: trivially true
        snapshot = service.snapshot()
        assert snapshot["drained"] is True
        assert snapshot["counters"]["service.drained"] == 1
        assert service.healthy  # clean drain still reads healthy
        assert not service.ready
