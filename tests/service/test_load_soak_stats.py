"""The load soak's latency statistics: nearest-rank percentile.

Regression for the soak's reporting path: ``percentile([])`` used to
raise ``IndexError``, so a fully-shed soak (every request 429'd, zero
completion latencies) crashed while writing its metrics instead of
reporting a clean run with zeroed latency rows.
"""

from __future__ import annotations

import pathlib
import sys

BENCHMARKS_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
sys.path.insert(0, str(BENCHMARKS_DIR))

from load_soak import percentile  # noqa: E402


class TestNearestRankPercentile:
    def test_empty_sample_reports_zero_not_index_error(self):
        assert percentile([], 0.50) == 0.0
        assert percentile([], 0.95) == 0.0
        assert percentile([], 1.0) == 0.0

    def test_singleton_reports_its_element_for_every_fraction(self):
        for fraction in (0.0, 0.25, 0.50, 0.95, 1.0):
            assert percentile([3.25], fraction) == 3.25

    def test_nearest_rank_definition(self):
        """ordered[ceil(fraction * n) - 1]: the smallest observed value
        with at least ``fraction`` of the sample at or below it."""
        sample = [15.0, 20.0, 35.0, 40.0, 50.0]
        assert percentile(sample, 0.30) == 20.0   # ceil(1.5) = 2nd
        assert percentile(sample, 0.40) == 20.0   # ceil(2.0) = 2nd
        assert percentile(sample, 0.50) == 35.0   # ceil(2.5) = 3rd
        assert percentile(sample, 1.00) == 50.0

    def test_returns_an_observed_value(self):
        sample = [1.0, 2.0, 4.0, 8.0]
        for fraction in (0.1, 0.5, 0.9, 0.95):
            assert percentile(sample, fraction) in sample

    def test_input_order_is_irrelevant(self):
        sample = [9.0, 1.0, 5.0, 3.0, 7.0]
        assert percentile(sample, 0.50) == percentile(sorted(sample), 0.50)
        assert percentile(sample, 0.50) == 5.0

    def test_fraction_extremes_clamp_into_the_sample(self):
        sample = [1.0, 2.0, 3.0]
        assert percentile(sample, 0.0) == 1.0    # rank 0 clamps to first
        assert percentile(sample, 1.0) == 3.0    # never past the last

    def test_parity_stability(self):
        """Even- and odd-sized samples both report a real observation
        (no interpolated midpoints that depend on sample parity)."""
        odd = [1.0, 2.0, 3.0]
        even = [1.0, 2.0, 3.0, 4.0]
        assert percentile(odd, 0.5) == 2.0
        assert percentile(even, 0.5) == 2.0
