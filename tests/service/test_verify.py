"""The per-response layout verifier: every way a response can lie."""

import pytest

from repro.core import align_program
from repro.core.align import AlignmentReport
from repro.core.layout import Layout, ProgramLayout
from repro.errors import LayoutVerificationError
from repro.lang import compile_source, run_and_profile
from repro.machine.models import get_model
from repro.service import verify_layouts, verify_or_raise

from .conftest import SERVICE_SOURCE


@pytest.fixture(scope="module")
def aligned():
    """One real aligned program shared by every test in this module."""
    module = compile_source(SERVICE_SOURCE)
    _, profile = run_and_profile(module, list(range(20)))
    model = get_model("alpha21164")
    report = AlignmentReport()
    layouts = align_program(
        module.program, profile, method="tsp", model=model, seed=0,
        report=report,
    )
    return module.program, layouts, profile, model, report


def copy_layouts(layouts: ProgramLayout) -> ProgramLayout:
    return ProgramLayout(layouts=dict(layouts.items()))


class TestVerifyLayouts:
    def test_clean_alignment_has_no_violations(self, aligned):
        program, layouts, profile, model, report = aligned
        assert verify_layouts(
            program, layouts, profile, model, costs=report.costs
        ) == []

    def test_missing_layout_reported(self, aligned):
        program, layouts, profile, model, report = aligned
        broken = copy_layouts(layouts)
        del broken.layouts["main"]
        violations = verify_layouts(program, broken, profile, model)
        assert violations == ["main: no layout in response"]

    def test_non_permutation_reported(self, aligned):
        program, layouts, profile, model, report = aligned
        broken = copy_layouts(layouts)
        order = list(broken["main"].order)
        # Duplicate one block in place of another: same length, not a
        # permutation.  Bypass Layout's own constructor check to model a
        # corrupt artifact.
        corrupt = object.__new__(Layout)
        object.__setattr__(corrupt, "order", (*order[:-1], order[0]))
        broken.layouts["main"] = corrupt
        (violation,) = verify_layouts(program, broken, profile, model)
        assert violation.startswith("main: invalid layout")

    def test_entry_block_must_lead(self, aligned):
        program, layouts, profile, model, report = aligned
        broken = copy_layouts(layouts)
        order = list(broken["main"].order)
        broken.layouts["main"] = Layout(order=(*order[1:], order[0]))
        (violation,) = verify_layouts(program, broken, profile, model)
        assert "invalid layout" in violation

    def test_cost_disagreement_reported(self, aligned):
        program, layouts, profile, model, report = aligned
        lying = {name: cost + 1.0 for name, cost in report.costs.items()}
        violations = verify_layouts(
            program, layouts, profile, model, costs=lying
        )
        assert violations and "!=" in violations[0]

    def test_cost_below_bound_reported(self, aligned):
        program, layouts, profile, model, report = aligned
        impossible = {name: cost + 5.0 for name, cost in report.costs.items()}
        violations = verify_layouts(
            program, layouts, profile, model,
            costs=report.costs, bounds=impossible,
        )
        assert violations
        assert any("below certified lower bound" in v for v in violations)

    def test_consistent_bound_passes(self, aligned):
        program, layouts, profile, model, report = aligned
        at_cost = dict(report.costs)  # bound == cost is legitimate
        assert verify_layouts(
            program, layouts, profile, model,
            costs=report.costs, bounds=at_cost,
        ) == []

    def test_stale_cost_entry_ignored(self, aligned):
        program, layouts, profile, model, report = aligned
        costs = dict(report.costs)
        costs["ghost_procedure"] = 123.0
        assert verify_layouts(
            program, layouts, profile, model, costs=costs
        ) == []


class TestExtTSPFamilyVerifies:
    """The 2020-objective aligners produce verifiable answers too: valid
    permutations whose reported costs agree with re-evaluation and sit on
    or above the certified Held–Karp floor."""

    @pytest.fixture(scope="class", params=["exttsp", "chain-merge"])
    def exttsp_aligned(self, request):
        module = compile_source(SERVICE_SOURCE)
        _, profile = run_and_profile(module, list(range(20)))
        model = get_model("alpha21164")
        report = AlignmentReport()
        layouts = align_program(
            module.program, profile, method=request.param, model=model,
            seed=0, report=report,
        )
        return module.program, layouts, profile, model, report

    @staticmethod
    def evaluated_costs(program, layouts, profile, model):
        from repro.core import evaluate_layout

        return {
            proc.name: evaluate_layout(
                proc.cfg, layouts[proc.name], profile[proc.name], model
            ).total
            for proc in program
        }

    def test_clean_alignment_has_no_violations(self, exttsp_aligned):
        program, layouts, profile, model, _report = exttsp_aligned
        costs = self.evaluated_costs(program, layouts, profile, model)
        assert verify_layouts(
            program, layouts, profile, model, costs=costs
        ) == []

    def test_costs_respect_the_held_karp_floor(self, exttsp_aligned):
        from repro.core import lower_bound_program

        program, layouts, profile, model, _report = exttsp_aligned
        costs = self.evaluated_costs(program, layouts, profile, model)
        bounds = lower_bound_program(program, profile, model=model)
        assert verify_layouts(
            program, layouts, profile, model,
            costs=costs, bounds=bounds.per_procedure,
        ) == []

    def test_every_procedure_got_a_layout_and_a_score(self, exttsp_aligned):
        program, layouts, profile, model, report = exttsp_aligned
        for proc in program:
            layouts[proc.name].check_against(proc.cfg)
            assert proc.name in report.exttsp_scores


class TestVerifyOrRaise:
    def test_raises_typed_error_carrying_violations(self, aligned):
        program, layouts, profile, model, report = aligned
        broken = copy_layouts(layouts)
        del broken.layouts["main"]
        with pytest.raises(LayoutVerificationError) as info:
            verify_or_raise(program, broken, profile, model)
        assert info.value.violations == ["main: no layout in response"]
        assert "1 layout verification violation" in str(info.value)

    def test_clean_does_not_raise(self, aligned):
        program, layouts, profile, model, report = aligned
        verify_or_raise(program, layouts, profile, model, costs=report.costs)
