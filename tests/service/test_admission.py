"""Admission control: bounded queue, shedding, drain refusal, accounting."""

import threading

import pytest

from repro.errors import (
    DeadlineShedError,
    ServiceOverloadError,
    ServiceUnavailableError,
)
from repro.faults import inject_faults
from repro.service import AdmissionGate, AlignmentService, ServiceConfig
from repro.service.admission import SERVICE_TIME_ALPHA

from .conftest import make_payload


class TestGate:
    def test_admits_until_capacity_then_sheds(self):
        gate = AdmissionGate(capacity=2)
        gate.submit("a")
        gate.submit("b")
        with pytest.raises(ServiceOverloadError) as info:
            gate.submit("c")
        assert info.value.queue_depth == 2
        assert (gate.submitted, gate.admitted, gate.shed) == (3, 2, 1)

    def test_accounting_invariant(self):
        gate = AdmissionGate(capacity=1)
        for _ in range(5):
            try:
                gate.submit("x")
            except ServiceOverloadError:
                pass
        assert gate.submitted == gate.admitted + gate.shed

    def test_draining_gate_refuses_with_503_type(self):
        gate = AdmissionGate(capacity=4)
        gate.begin_drain()
        with pytest.raises(ServiceUnavailableError):
            gate.submit("late")
        # Drain refusals are not sheds: the client should not retry here.
        assert gate.shed == 0 and gate.submitted == 1

    def test_dequeue_keeps_order(self):
        gate = AdmissionGate(capacity=3)
        for item in ("a", "b", "c"):
            gate.submit(item)
        assert [gate.next_item() for _ in range(3)] == ["a", "b", "c"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionGate(capacity=0)

    def test_overload_fault_sheds_with_queue_room(self):
        gate = AdmissionGate(capacity=8)
        with inject_faults(service_overload=2) as plan:
            gate.submit("first")
            with pytest.raises(ServiceOverloadError, match="injected"):
                gate.submit("second")
            gate.submit("third")
        assert plan.trips("service_overload") == 1
        assert (gate.admitted, gate.shed) == (2, 1)


class TestAdaptiveAdmission:
    def test_estimate_starts_unseeded_and_tracks_ewma(self):
        gate = AdmissionGate(capacity=4)
        assert gate.estimated_service_ms() is None
        assert gate.expected_wait_ms() == 0.0
        gate.observe_service_time(100.0)
        assert gate.estimated_service_ms() == 100.0
        gate.observe_service_time(200.0)
        expected = 100.0 + SERVICE_TIME_ALPHA * 100.0
        assert gate.estimated_service_ms() == pytest.approx(expected)

    def test_negative_observation_is_ignored(self):
        gate = AdmissionGate(capacity=4)
        gate.observe_service_time(-5.0)
        assert gate.estimated_service_ms() is None

    def test_expected_wait_scales_with_backlog(self):
        gate = AdmissionGate(capacity=8)
        gate.observe_service_time(50.0)
        assert gate.expected_wait_ms() == 0.0
        gate.submit("a")
        gate.submit("b")
        assert gate.expected_wait_ms() == pytest.approx(100.0)

    def test_doomed_deadline_is_shed_typed(self):
        gate = AdmissionGate(capacity=8)
        gate.observe_service_time(100.0)
        gate.submit("a")
        gate.submit("b")  # expected wait now 200ms
        with pytest.raises(DeadlineShedError) as info:
            gate.submit("c", deadline_ms=50.0)
        exc = info.value
        # Still a 429: DeadlineShedError subclasses ServiceOverloadError.
        assert isinstance(exc, ServiceOverloadError)
        assert exc.expected_wait_ms == pytest.approx(200.0)
        assert exc.deadline_ms == 50.0
        assert exc.retry_after_s > 0
        # A deadline the backlog can meet is admitted.
        gate.next_item()
        gate.next_item()
        gate.submit("d", deadline_ms=50.0)
        assert gate.deadline_shed == 1
        assert gate.submitted == gate.admitted + gate.shed

    def test_uncalibrated_gate_never_deadline_sheds(self):
        gate = AdmissionGate(capacity=2)
        gate.submit("a", deadline_ms=0.001)
        gate.submit("b", deadline_ms=0.001)
        assert gate.deadline_shed == 0

    def test_shed_errors_carry_retry_after(self):
        gate = AdmissionGate(capacity=1)
        gate.observe_service_time(500.0)
        gate.submit("a")
        with pytest.raises(ServiceOverloadError) as info:
            gate.submit("b")
        assert info.value.retry_after_s == pytest.approx(0.5)

    def test_stats_expose_estimate_and_deadline_sheds(self):
        gate = AdmissionGate(capacity=4)
        gate.observe_service_time(10.0)
        stats = gate.stats()
        assert stats["est_service_ms"] == 10.0
        assert stats["deadline_shed"] == 0

    def test_service_worker_feeds_the_estimate(self, service, payload):
        assert service.align(payload, timeout=60)["status"] == "ok"
        assert service.gate.estimated_service_ms() is not None


class TestServiceAdmission:
    def test_burst_beyond_capacity_sheds_typed(self, monkeypatch):
        import repro.service.core as core_mod

        # Stall the worker inside its first request so the queue backs up
        # deterministically, then release and let everything finish.
        release = threading.Event()
        stalled = threading.Event()
        real_compile = core_mod.compile_source

        def slow_compile(source):
            stalled.set()
            assert release.wait(30)
            return real_compile(source)

        monkeypatch.setattr(core_mod, "compile_source", slow_compile)
        service = AlignmentService(ServiceConfig(capacity=2)).start()
        try:
            first = service.submit(make_payload())
            assert stalled.wait(30)
            queued = [service.submit(make_payload()) for _ in range(2)]
            with pytest.raises(ServiceOverloadError):
                service.submit(make_payload())
            release.set()
            assert first.result(60)["status"] == "ok"
            for pending in queued:
                assert pending.result(60)["status"] == "ok"
        finally:
            release.set()
            assert service.drain(timeout=30)
        stats = service.gate.stats()
        assert stats["submitted"] == 4
        assert stats["admitted"] == 3 and stats["shed"] == 1

    def test_draining_service_refuses_new_requests(self, service, payload):
        assert service.align(payload, timeout=60)["status"] == "ok"
        service.begin_drain()
        with pytest.raises(ServiceUnavailableError):
            service.submit(payload)

    def test_admitted_work_survives_drain(self, monkeypatch):
        import repro.service.core as core_mod

        release = threading.Event()
        stalled = threading.Event()
        real_compile = core_mod.compile_source

        def slow_compile(source):
            stalled.set()
            assert release.wait(30)
            return real_compile(source)

        monkeypatch.setattr(core_mod, "compile_source", slow_compile)
        service = AlignmentService(ServiceConfig(capacity=4)).start()
        inflight = service.submit(make_payload())
        assert stalled.wait(30)
        queued = service.submit(make_payload())
        service.begin_drain()
        release.set()
        # Both the in-flight and the queued request complete through drain.
        assert inflight.result(60)["status"] == "ok"
        assert queued.result(60)["status"] == "ok"
        assert service.drain(timeout=30)
