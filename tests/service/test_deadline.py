"""Deadline → budget/timeout conversion, and its effect on requests."""

import pytest

from repro.budget import DEFAULT_RETRY_POLICY, Budget, RetryPolicy
from repro.service.deadline import (
    MIN_SHARE_MS,
    SOLVE_FRACTION,
    TIMEOUT_GRACE,
    plan_deadline,
)


class TestBudgetSplit:
    def test_even_split(self):
        parts = Budget(wall_ms=100.0).split(4)
        assert parts.wall_ms == 25.0

    def test_split_one_is_identity(self):
        budget = Budget(wall_ms=100.0)
        assert budget.split(1) is budget

    def test_unlimited_splits_to_unlimited(self):
        budget = Budget()
        assert budget.split(8) is budget

    def test_iteration_budget_splits_with_floor(self):
        parts = Budget(max_iterations=10).split(40)
        assert parts.max_iterations == 1  # never zero

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            Budget(wall_ms=10.0).split(0)


class TestPlanDeadline:
    def test_no_deadline_is_passthrough(self):
        policy = RetryPolicy(retries=1)
        plan = plan_deadline(None, 5, policy)
        assert plan.budget is None
        assert plan.policy is policy
        assert plan.deadline_ms is None

    def test_share_is_solve_fraction_over_procedures(self):
        plan = plan_deadline(1000.0, 4)
        assert plan.share_ms == 1000.0 * SOLVE_FRACTION / 4
        assert plan.budget.wall_ms == plan.share_ms
        assert plan.policy.task_timeout_ms == plan.share_ms * TIMEOUT_GRACE

    def test_share_never_below_floor(self):
        plan = plan_deadline(1.0, 100)
        assert plan.share_ms == MIN_SHARE_MS

    def test_zero_procedures_treated_as_one(self):
        plan = plan_deadline(1000.0, 0)
        assert plan.share_ms == 1000.0 * SOLVE_FRACTION

    def test_existing_tighter_guard_wins(self):
        tight = RetryPolicy(retries=0, task_timeout_ms=1.0)
        plan = plan_deadline(10_000.0, 1, tight)
        assert plan.policy.task_timeout_ms == 1.0

    def test_looser_guard_is_tightened(self):
        loose = RetryPolicy(retries=0, task_timeout_ms=10_000_000.0)
        plan = plan_deadline(1000.0, 2, loose)
        assert plan.policy.task_timeout_ms == pytest.approx(
            plan.share_ms * TIMEOUT_GRACE
        )
        # Everything else about the policy is preserved.
        assert plan.policy.retries == 0

    def test_default_policy_used_when_none(self):
        plan = plan_deadline(1000.0, 1, None)
        assert plan.policy.retries == DEFAULT_RETRY_POLICY.retries

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError):
            plan_deadline(0, 1)
        with pytest.raises(ValueError):
            plan_deadline(-5.0, 1)


class TestDeadlineInService:
    def test_tight_deadline_degrades_instead_of_failing(
        self, service, payload
    ):
        # A 1 ms deadline cannot fit a TSP anneal; the request must still
        # come back with a verified layout, served by a cheaper rung.
        payload["deadline_ms"] = 1
        response = service.align(payload, timeout=120)
        assert response["status"] == "ok"
        assert response["verified"] is True
        assert response["deadline_ms"] == 1

    def test_roomy_deadline_solves_at_full_quality(self, service, payload):
        baseline = service.align(dict(payload), timeout=120)
        payload["deadline_ms"] = 600_000
        response = service.align(payload, timeout=120)
        assert response["status"] == "ok"
        assert response["degraded"] == {}
        assert response["costs"] == baseline["costs"]
