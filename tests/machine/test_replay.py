"""Cross-validation of the analytic cost model against event-by-event
trace replay.

Two completely independent accountings of Table 3 penalties — the §2.2
closed-form sums in :mod:`repro.core.evaluate` and the per-transition
replay in :mod:`repro.machine.replay` — must agree exactly under static
prediction.  This pins down the cost formula, the fixup attribution, and
the materialization decisions simultaneously.
"""

import random

import pytest

from repro.core import align_program, evaluate_program, train_predictors
from repro.core.materialize import materialize_program
from repro.lang import compile_source, execute
from repro.machine import ALPHA_21064, ALPHA_21164, DEEP_PIPE
from repro.machine.replay import replay_static_penalties
from repro.profiles import ProgramProfile

SOURCE = """
arr memo[128];

fn collatz_len(n) {
  var steps = 0;
  while (n != 1 && steps < 200) {
    if (n % 2 == 0) {
      n = n / 2;
    } else {
      n = 3 * n + 1;
    }
    steps = steps + 1;
  }
  return steps;
}

fn main() {
  var i = 0;
  var total = 0;
  while (i < input_len()) {
    var v = input(i);
    switch (v % 5) {
      case 0: total = total + collatz_len(v + 1);
      case 1: total = total + 1;
      case 2: total = total - 1;
      case 4: total = total + collatz_len(v + 3);
    }
    i = i + 1;
  }
  output(total);
  return total;
}
"""


@pytest.fixture(scope="module")
def traced_run():
    module = compile_source(SOURCE)
    rng = random.Random(5)
    inputs = [rng.randrange(1, 500) for _ in range(400)]
    result = execute(module, inputs, keep_events=False, keep_transitions=True)
    profile = ProgramProfile()
    for proc, edges in result.trace.edge_counts.items():
        edge_profile = profile.profile(proc)
        for key, count in edges.items():
            edge_profile.add(*key, count)
    for proc in module.program:
        profile.call_counts[proc.name] = result.trace.activation_counts.get(
            proc.name, 0
        )
    return module, profile, result.trace.transition_log


@pytest.mark.parametrize("method", ["original", "greedy", "tsp"])
@pytest.mark.parametrize("model", [ALPHA_21164, ALPHA_21064, DEEP_PIPE])
def test_replay_matches_analytic_evaluator(traced_run, method, model):
    module, profile, log = traced_run
    program = module.program
    layouts = align_program(program, profile, method=method, model=model)
    predictors = train_predictors(program, profile)
    physical = materialize_program(program, layouts, predictors)

    analytic = evaluate_program(
        program, layouts, profile, model, predictors=predictors
    )
    replayed = replay_static_penalties(
        program, physical, predictors, log, model
    )

    assert replayed.total == pytest.approx(analytic.total)
    assert replayed.redirect == pytest.approx(analytic.breakdown.redirect)
    assert replayed.mispredict == pytest.approx(analytic.breakdown.mispredict)
    assert replayed.jump == pytest.approx(analytic.breakdown.jump)


def test_replay_event_count_matches_profile(traced_run):
    module, profile, log = traced_run
    total_transitions = sum(len(t) for t in log.values())
    total_edges = sum(p.total() for p in profile.procedures.values())
    assert total_transitions == total_edges
