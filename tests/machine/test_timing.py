"""Tests for the trace-driven timing simulator."""

import pytest

from repro.core import align_program, evaluate_program, original_program_layout, train_predictors
from repro.machine import ALPHA_21164, DirectMappedICache
from repro.machine.timing import TimingBreakdown, simulate_timing


@pytest.fixture(scope="module")
def timed(mini_module, mini_run):
    result, profile = mini_run
    program = mini_module.program
    outcomes = {}
    for method in ("original", "greedy", "tsp"):
        layouts = align_program(program, profile, method=method)
        outcomes[method] = (
            layouts,
            simulate_timing(
                program, layouts, profile, result.trace.trace, ALPHA_21164
            ),
        )
    return outcomes


class TestTiming:
    def test_breakdown_sums(self, timed):
        for _, timing in timed.values():
            assert timing.total_cycles == pytest.approx(
                timing.instruction_cycles
                + timing.control_stall_cycles
                + timing.icache_stall_cycles
            )

    def test_instruction_cycles_close_to_vm_count(self, mini_run, timed):
        """Base cycles track the VM's executed-instruction count: every body
        word issues, plus CTIs and fixups that the VM does not execute."""
        result, _ = mini_run
        _, timing = timed["original"]
        assert timing.instruction_cycles >= result.instructions_executed
        # CTI overhead is bounded by one word per executed block.
        assert timing.instruction_cycles <= (
            result.instructions_executed + 2 * result.blocks_executed
        )

    def test_alignment_reduces_cycles(self, timed):
        original = timed["original"][1].total_cycles
        greedy = timed["greedy"][1].total_cycles
        tsp = timed["tsp"][1].total_cycles
        assert tsp <= greedy <= original

    def test_stalls_less_than_full_penalties(
        self, mini_module, mini_run, timed
    ):
        """Control stalls exclude jump issue cycles, so they are bounded by
        the full §2.2 penalty."""
        result, profile = mini_run
        program = mini_module.program
        layouts, timing = timed["original"]
        penalty = evaluate_program(program, layouts, profile, ALPHA_21164)
        assert timing.control_stall_cycles <= penalty.total + 1e-9

    def test_icache_stats_populated(self, timed):
        _, timing = timed["original"]
        assert timing.icache_accesses > 0
        assert timing.icache_misses >= 1  # at least the cold misses

    def test_small_cache_misses_more(self, mini_module, mini_run):
        result, profile = mini_run
        program = mini_module.program
        layouts = original_program_layout(program)
        predictors = train_predictors(program, profile)
        big = simulate_timing(
            program, layouts, profile, result.trace.trace, ALPHA_21164,
            predictors=predictors, icache=DirectMappedICache(8192, 32),
        )
        small = simulate_timing(
            program, layouts, profile, result.trace.trace, ALPHA_21164,
            predictors=predictors, icache=DirectMappedICache(256, 32),
        )
        assert small.icache_misses >= big.icache_misses
