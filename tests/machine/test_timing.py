"""Tests for the trace-driven timing simulator."""

import pytest

from repro.core import align_program, evaluate_program, original_program_layout, train_predictors
from repro.machine import ALPHA_21164, DirectMappedICache
from repro.core.materialize import materialize_program
from repro.machine.timing import (
    TimingBreakdown,
    _fetch_stream,
    simulate_timing,
)
from repro.profiles.trace import CompactTrace, ExecutionTrace


@pytest.fixture(scope="module")
def timed(mini_module, mini_run):
    result, profile = mini_run
    program = mini_module.program
    outcomes = {}
    for method in ("original", "greedy", "tsp"):
        layouts = align_program(program, profile, method=method)
        outcomes[method] = (
            layouts,
            simulate_timing(
                program, layouts, profile, result.trace.trace, ALPHA_21164
            ),
        )
    return outcomes


class TestTiming:
    def test_breakdown_sums(self, timed):
        for _, timing in timed.values():
            assert timing.total_cycles == pytest.approx(
                timing.instruction_cycles
                + timing.control_stall_cycles
                + timing.icache_stall_cycles
            )

    def test_instruction_cycles_close_to_vm_count(self, mini_run, timed):
        """Base cycles track the VM's executed-instruction count: every body
        word issues, plus CTIs and fixups that the VM does not execute."""
        result, _ = mini_run
        _, timing = timed["original"]
        assert timing.instruction_cycles >= result.instructions_executed
        # CTI overhead is bounded by one word per executed block.
        assert timing.instruction_cycles <= (
            result.instructions_executed + 2 * result.blocks_executed
        )

    def test_alignment_reduces_cycles(self, timed):
        original = timed["original"][1].total_cycles
        greedy = timed["greedy"][1].total_cycles
        tsp = timed["tsp"][1].total_cycles
        assert tsp <= greedy <= original

    def test_stalls_less_than_full_penalties(
        self, mini_module, mini_run, timed
    ):
        """Control stalls exclude jump issue cycles, so they are bounded by
        the full §2.2 penalty."""
        result, profile = mini_run
        program = mini_module.program
        layouts, timing = timed["original"]
        penalty = evaluate_program(program, layouts, profile, ALPHA_21164)
        assert timing.control_stall_cycles <= penalty.total + 1e-9

    def test_icache_stats_populated(self, timed):
        _, timing = timed["original"]
        assert timing.icache_accesses > 0
        assert timing.icache_misses >= 1  # at least the cold misses

    def test_small_cache_misses_more(self, mini_module, mini_run):
        result, profile = mini_run
        program = mini_module.program
        layouts = original_program_layout(program)
        predictors = train_predictors(program, profile)
        big = simulate_timing(
            program, layouts, profile, result.trace.trace, ALPHA_21164,
            predictors=predictors, icache=DirectMappedICache(8192, 32),
        )
        small = simulate_timing(
            program, layouts, profile, result.trace.trace, ALPHA_21164,
            predictors=predictors, icache=DirectMappedICache(256, 32),
        )
        assert small.icache_misses >= big.icache_misses


class TestFetchStreamFastPath:
    """The vectorized CompactTrace icache replay must match the scalar
    event loop exactly — same breakdown, same cache state."""

    @pytest.mark.parametrize("method", ["original", "greedy", "tsp"])
    def test_compact_trace_matches_event_loop(
        self, mini_module, mini_run, method
    ):
        result, profile = mini_run
        program = mini_module.program
        layouts = align_program(program, profile, method=method)
        predictors = train_predictors(program, profile)
        trace = result.trace.trace
        compact = CompactTrace(trace)
        scalar_cache = DirectMappedICache(8192, 32)
        fast_cache = DirectMappedICache(8192, 32)
        scalar = simulate_timing(
            program, layouts, profile, trace, ALPHA_21164,
            predictors=predictors, icache=scalar_cache,
        )
        fast = simulate_timing(
            program, layouts, profile, compact, ALPHA_21164,
            predictors=predictors, icache=fast_cache,
        )
        assert fast == scalar
        assert fast_cache._tags == scalar_cache._tags

    def test_fetch_stream_matches_scalar_order(self, mini_module, mini_run):
        """_fetch_stream splices inline fixup fetches exactly where the
        scalar loop issues them."""
        result, profile = mini_run
        program = mini_module.program
        layouts = align_program(program, profile, method="original")
        predictors = train_predictors(program, profile)
        materialized = materialize_program(program, layouts, predictors)
        trace = result.trace.trace
        expected = []
        last = None
        for proc_name, block_id in trace:
            physical = materialized[proc_name]
            if last is not None and last[0] == proc_name:
                previous = physical.block_for(last[1])
                if previous.fixup_target == block_id:
                    fixup = physical.fixup_after(last[1])
                    if fixup is not None:
                        expected.append((fixup.address, fixup.words))
            physical_block = physical.block_for(block_id)
            expected.append((physical_block.address, physical_block.words))
            last = (proc_name, block_id)
        stream = _fetch_stream(materialized, CompactTrace(trace))
        assert stream is not None
        addresses, words = stream
        assert list(zip(addresses.tolist(), words.tolist())) == expected

    def test_unknown_block_falls_back_to_scalar(self, mini_module, mini_run):
        result, profile = mini_run
        program = mini_module.program
        layouts = align_program(program, profile, method="original")
        predictors = train_predictors(program, profile)
        materialized = materialize_program(program, layouts, predictors)
        trace = ExecutionTrace()
        for event in mini_run[0].trace.trace:
            trace.append(*event)
        trace.append(next(iter(trace))[0], 10_000)  # block id out of range
        assert _fetch_stream(materialized, CompactTrace(trace)) is None
