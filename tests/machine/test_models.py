"""Tests for penalty models — including the paper's Table 3 values."""

import pytest

from repro.machine import (
    ALPHA_21064,
    ALPHA_21164,
    DEEP_PIPE,
    UNIT_COST,
    BranchPenalties,
    PenaltyModel,
    get_model,
)


class TestTable3:
    """The Alpha 21164 model must match the paper's Table 3 exactly."""

    def test_misfetch_and_mispredict(self):
        assert ALPHA_21164.misfetch_cycles == 1.0
        assert ALPHA_21164.mispredict_cycles == 5.0

    def test_unconditional_branch_costs_two(self):
        # "pTT equals 2 to account for the cost of the branch in addition
        # to the one cycle penalty for the misfetch."
        assert ALPHA_21164.unconditional == 2.0

    def test_conditional_penalties(self):
        cond = ALPHA_21164.conditional
        assert cond.p_nn == 0.0    # fall through to (common) following block
        assert cond.p_tt == 1.0    # branch to (common) following block
        assert cond.p_nt == 5.0    # mispredict (any layout)
        assert cond.p_tn == 5.0

    def test_register_branch_penalties(self):
        multi = ALPHA_21164.multiway
        assert multi.p_nn == 0.0   # fall through to (common) following block
        assert multi.p_tt == 3.0   # branch to any other CFG successor
        assert multi.p_nt == 3.0
        assert multi.p_tn == 3.0


class TestBranchPenalties:
    def test_cost_dispatch(self):
        penalties = BranchPenalties(p_tt=1, p_tn=2, p_nt=3, p_nn=4)
        assert penalties.cost(predicted_taken=True, taken=True) == 1
        assert penalties.cost(predicted_taken=True, taken=False) == 2
        assert penalties.cost(predicted_taken=False, taken=True) == 3
        assert penalties.cost(predicted_taken=False, taken=False) == 4


class TestModelRegistry:
    def test_get_model(self):
        assert get_model("alpha21164") is ALPHA_21164
        assert get_model("alpha21064") is ALPHA_21064

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="unknown machine model"):
            get_model("pentium-9")

    def test_from_pipeline_derivations(self):
        model = PenaltyModel.from_pipeline("x", misfetch=2, mispredict=9)
        assert model.unconditional == 3.0
        assert model.conditional.p_tt == 2.0
        assert model.conditional.p_nt == 9.0
        assert model.multiway.p_tt == 9.0  # defaults to mispredict

    def test_deep_pipe_dominates_21164(self):
        assert DEEP_PIPE.mispredict_cycles > ALPHA_21164.mispredict_cycles
        assert DEEP_PIPE.misfetch_cycles > ALPHA_21164.misfetch_cycles

    def test_unit_cost_is_frequency_model(self):
        assert UNIT_COST.unconditional == 1.0
        assert UNIT_COST.conditional.p_tt == 1.0
        assert UNIT_COST.conditional.p_nt == 1.0

    def test_models_hashable_for_caching(self):
        assert {ALPHA_21164, ALPHA_21064}
