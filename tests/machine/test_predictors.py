"""Tests for static and dynamic predictors."""

import pytest

from repro.machine import BimodalPredictor, BranchTargetBuffer, StaticPredictor
from repro.profiles import EdgeProfile


class TestStaticPredictor:
    def test_trains_to_most_frequent_successor(self, diamond_cfg):
        left = next(b for b in diamond_cfg if b.label == "left").block_id
        right = next(b for b in diamond_cfg if b.label == "right").block_id
        profile = EdgeProfile({(diamond_cfg.entry, left): 3,
                               (diamond_cfg.entry, right): 9})
        predictor = StaticPredictor.train(diamond_cfg, profile)
        assert predictor.predict(diamond_cfg.entry) == right

    def test_untrained_block_predicts_first_successor(self, diamond_cfg):
        predictor = StaticPredictor.train(diamond_cfg, EdgeProfile())
        assert predictor.predict(diamond_cfg.entry) == diamond_cfg.successors(
            diamond_cfg.entry
        )[0]

    def test_return_blocks_have_no_prediction(self, diamond_cfg):
        predictor = StaticPredictor.train(diamond_cfg, EdgeProfile())
        exit_block = next(b for b in diamond_cfg if b.label == "exit")
        assert predictor.predict(exit_block.block_id) is None


class TestBimodal:
    def test_saturating_counter_hysteresis(self):
        predictor = BimodalPredictor(initial=2)
        assert predictor.predict_taken(0)
        predictor.update(0, taken=False)      # 2 -> 1
        assert not predictor.predict_taken(0)
        predictor.update(0, taken=True)       # 1 -> 2
        assert predictor.predict_taken(0)

    def test_saturation_bounds(self):
        predictor = BimodalPredictor(initial=3)
        for _ in range(10):
            predictor.update(0, taken=True)
        predictor.update(0, taken=False)
        assert predictor.predict_taken(0)  # 3 -> 2, still predicts taken

    def test_sites_independent(self):
        predictor = BimodalPredictor()
        predictor.update(1, taken=False)
        predictor.update(1, taken=False)
        assert predictor.predict_taken(2)
        assert not predictor.predict_taken(1)

    def test_bad_initial_rejected(self):
        with pytest.raises(ValueError):
            BimodalPredictor(initial=7)

    def test_biased_stream_accuracy(self):
        """A 90/10 biased branch should be predicted mostly correctly."""
        import random
        rng = random.Random(0)
        predictor = BimodalPredictor()
        correct = total = 0
        for _ in range(2000):
            taken = rng.random() < 0.9
            if predictor.predict_taken(5) == taken:
                correct += 1
            predictor.update(5, taken)
            total += 1
        assert correct / total > 0.85


class TestBTB:
    def test_hit_after_fill(self):
        btb = BranchTargetBuffer(16)
        assert not btb.lookup(3, 100)   # cold miss
        assert btb.lookup(3, 100)       # now hits
        assert not btb.lookup(3, 200)   # target changed

    def test_capacity_aliasing(self):
        btb = BranchTargetBuffer(1)
        btb.lookup(0, 10)
        btb.lookup(1, 20)               # evicts site 0
        assert not btb.lookup(0, 10)

    def test_stats(self):
        btb = BranchTargetBuffer(8)
        btb.lookup(0, 1)
        btb.lookup(0, 1)
        assert btb.hits == 1
        assert btb.misses == 1

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(0)
