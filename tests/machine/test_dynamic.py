"""Tests for the dynamic-prediction replay (paper §6 future work)."""

import random

import pytest

from repro.core import align_program, train_predictors
from repro.core.materialize import materialize_program
from repro.lang import compile_source, execute
from repro.machine import ALPHA_21164
from repro.machine.dynamic import simulate_dynamic_penalties
from repro.profiles import ProgramProfile

SOURCE = """
fn main() {
  var i = 0;
  var n = input_len();
  var odd = 0;
  while (i < n) {
    if (input(i) % 2) { odd = odd + 1; }
    i = i + 1;
  }
  return odd;
}
"""


@pytest.fixture(scope="module")
def traced():
    module = compile_source(SOURCE)
    rng = random.Random(0)
    inputs = [rng.randrange(100) for _ in range(600)]
    from repro.profiles import TraceBuilder
    from repro.lang.vm import run_and_profile
    # Re-run with transitions kept: the VM builds its own TraceBuilder, so
    # use execute + a manual profile here.
    result = execute(module, inputs, trace=True)
    # Rebuild with transitions by replaying counts through a fresh builder.
    builder = TraceBuilder(keep_transitions=True)
    builder.enter("main")
    prev_events = [b for p, b in result.trace.trace if p == "main"]
    for block in prev_events:
        builder.visit(block)
    builder.leave()
    profile = ProgramProfile()
    edge_profile = profile.profile("main")
    for key, count in builder.edge_counts["main"].items():
        edge_profile.add(*key, count)
    profile.call_counts["main"] = 1
    return module, profile, builder.transition_log


class TestDynamicReplay:
    def test_penalties_counted(self, traced):
        module, profile, log = traced
        program = module.program
        layouts = align_program(program, profile, method="tsp")
        predictors = train_predictors(program, profile)
        physical = materialize_program(program, layouts, predictors)
        result = simulate_dynamic_penalties(
            program, layouts, physical, log, ALPHA_21164
        )
        assert result.conditional_executions > 0
        assert result.total >= 0
        assert 0 <= result.mispredict_rate <= 1

    def test_bimodal_beats_static_on_alternating_branch(self):
        """A strictly alternating branch defeats static prediction (50%
        mispredict) and also the 2-bit counter — but a biased branch is
        predicted well dynamically even when trained on nothing."""
        source = """
        fn main() {
          var i = 0;
          var hits = 0;
          while (i < input_len()) {
            if (input(i)) { hits = hits + 1; }
            i = i + 1;
          }
          return hits;
        }
        """
        module = compile_source(source)
        inputs = [1, 1, 1, 1, 1, 1, 1, 0] * 100  # 87.5% taken
        result = execute(module, inputs, trace=True)
        from repro.profiles import TraceBuilder
        builder = TraceBuilder(keep_transitions=True)
        builder.enter("main")
        for proc, block in result.trace.trace:
            builder.visit(block)
        builder.leave()
        profile = ProgramProfile()
        edge_profile = profile.profile("main")
        for key, count in builder.edge_counts["main"].items():
            edge_profile.add(*key, count)
        profile.call_counts["main"] = 1
        program = module.program
        layouts = align_program(program, profile, method="tsp")
        predictors = train_predictors(program, profile)
        physical = materialize_program(program, layouts, predictors)
        dynamic = simulate_dynamic_penalties(
            program, layouts, physical, builder.transition_log, ALPHA_21164
        )
        assert dynamic.mispredict_rate < 0.30

    def test_btb_warmup(self, traced):
        module, profile, log = traced
        program = module.program
        layouts = align_program(program, profile, method="original")
        predictors = train_predictors(program, profile)
        physical = materialize_program(program, layouts, predictors)
        result = simulate_dynamic_penalties(
            program, layouts, physical, log, ALPHA_21164
        )
        if result.btb_hits + result.btb_misses > 50:
            assert result.btb_hits > result.btb_misses
