"""Tests for the instruction-cache simulators."""

import random

import numpy as np
import pytest

from repro.machine import DirectMappedICache, SetAssociativeICache, WORD_BYTES


class TestDirectMapped:
    def test_cold_miss_then_hit(self):
        cache = DirectMappedICache(1024, 32)
        assert cache.fetch(0, 4) == 1
        assert cache.fetch(0, 4) == 0

    def test_fetch_spanning_lines(self):
        cache = DirectMappedICache(1024, 32)
        # 12 words * 4 bytes = 48 bytes: spans two 32-byte lines.
        assert cache.fetch(0, 12) == 2

    def test_conflict_eviction(self):
        cache = DirectMappedICache(64, 32)  # 2 lines
        cache.fetch(0, 1)
        cache.fetch(64, 1)   # maps to the same line as address 0
        assert cache.fetch(0, 1) == 1  # evicted

    def test_non_conflicting_addresses_coexist(self):
        cache = DirectMappedICache(64, 32)
        cache.fetch(0, 1)
        cache.fetch(32, 1)
        assert cache.fetch(0, 1) == 0
        assert cache.fetch(32, 1) == 0

    def test_stats_accumulate(self):
        cache = DirectMappedICache(1024, 32)
        cache.fetch(0, 8)
        cache.fetch(0, 8)
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert 0 < cache.stats.miss_rate < 1

    def test_zero_words_noop(self):
        cache = DirectMappedICache(1024, 32)
        assert cache.fetch(0, 0) == 0
        assert cache.stats.accesses == 0

    def test_reset(self):
        cache = DirectMappedICache(1024, 32)
        cache.fetch(0, 1)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.fetch(0, 1) == 1

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            DirectMappedICache(1000, 32)
        with pytest.raises(ValueError):
            DirectMappedICache(32, 64)


class TestSetAssociative:
    def test_lru_within_set(self):
        # 2 sets, 2 ways, 32-byte lines.
        cache = SetAssociativeICache(128, 32, ways=2)
        cache.fetch(0, 1)       # set 0
        cache.fetch(64, 1)      # set 0
        cache.fetch(0, 1)       # touch line 0 (now MRU)
        cache.fetch(128, 1)     # set 0: evicts LRU = line at 64
        assert cache.fetch(0, 1) == 0
        assert cache.fetch(64, 1) == 1

    def test_higher_associativity_never_worse_on_conflicts(self):
        addresses = [0, 1024, 2048, 0, 1024, 2048] * 30
        direct = DirectMappedICache(1024, 32)
        assoc = SetAssociativeICache(1024, 32, ways=4)
        for addr in addresses:
            direct.fetch(addr, 1)
            assoc.fetch(addr, 1)
        assert assoc.stats.misses <= direct.stats.misses

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeICache(128, 32, ways=3)

    def test_word_bytes_constant(self):
        assert WORD_BYTES == 4


class TestReplayEquivalence:
    """``replay`` must be bit-equivalent to event-by-event ``fetch``."""

    @staticmethod
    def _random_stream(seed, events=400):
        rng = random.Random(seed)
        addresses, words = [], []
        addr = 0
        for _ in range(events):
            if rng.random() < 0.25:  # branch away
                addr = rng.randrange(0, 4096) * WORD_BYTES
            count = rng.choice([0, 1, 1, 2, 3, 5, 12])
            addresses.append(addr)
            words.append(count)
            addr += count * WORD_BYTES  # fall through
        return np.array(addresses), np.array(words)

    @pytest.mark.parametrize("size,line", [(8192, 32), (256, 32), (64, 32)])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_replay_matches_fetch(self, size, line, seed):
        addresses, words = self._random_stream(seed)
        scalar = DirectMappedICache(size, line)
        fast = DirectMappedICache(size, line)
        for addr, count in zip(addresses.tolist(), words.tolist()):
            scalar.fetch(addr, count)
        fast.replay(addresses, words)
        assert fast.stats.accesses == scalar.stats.accesses
        assert fast.stats.misses == scalar.stats.misses
        assert fast._tags == scalar._tags

    def test_replay_on_warm_cache(self):
        """Group-first accesses must compare against pre-existing tags."""
        warm_a, warm_w = self._random_stream(7)
        addresses, words = self._random_stream(8)
        scalar = DirectMappedICache(256, 32)
        fast = DirectMappedICache(256, 32)
        for cache in (scalar, fast):
            for addr, count in zip(warm_a.tolist(), warm_w.tolist()):
                cache.fetch(addr, count)
        for addr, count in zip(addresses.tolist(), words.tolist()):
            scalar.fetch(addr, count)
        fast.replay(addresses, words)
        assert fast.stats.accesses == scalar.stats.accesses
        assert fast.stats.misses == scalar.stats.misses
        assert fast._tags == scalar._tags

    def test_replay_empty_and_zero_word_streams(self):
        cache = DirectMappedICache(256, 32)
        assert cache.replay(np.array([], dtype=int), np.array([], dtype=int)) == 0
        assert cache.replay(np.array([0, 64]), np.array([0, 0])) == 0
        assert cache.stats.accesses == 0

    def test_replay_accumulates_like_fetch(self):
        cache = DirectMappedICache(1024, 32)
        first = cache.replay(np.array([0]), np.array([8]))
        second = cache.replay(np.array([0]), np.array([8]))
        assert (first, second) == (1, 0)
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1
