"""Tests for AST → CFG lowering."""

import pytest

from repro.cfg import TerminatorKind, validate_program
from repro.lang import LangError, compile_source


def kinds(module, fn):
    return [b.kind for b in module.program[fn].cfg]


class TestLoweringShapes:
    def test_straight_line_single_block(self):
        module = compile_source("fn main() { var x = 1 + 2; return x; }")
        cfg = module.program["main"].cfg
        assert len(cfg) == 1
        assert cfg.block(cfg.entry).kind is TerminatorKind.RETURN

    def test_if_produces_conditional(self):
        module = compile_source(
            "fn main() { var x = input(0); if (x) { output(1); } return 0; }"
        )
        assert TerminatorKind.CONDITIONAL in kinds(module, "main")

    def test_while_loop_has_back_edge(self):
        module = compile_source("""
        fn main() {
          var i = 0;
          while (i < 10) { i = i + 1; }
          return i;
        }
        """)
        cfg = module.program["main"].cfg
        from repro.cfg import natural_loops
        assert len(natural_loops(cfg)) == 1

    def test_dense_switch_lowered_to_jump_table(self):
        module = compile_source("""
        fn main() {
          var x = input(0);
          var y = 0;
          switch (x) {
            case 0: y = 1;
            case 1: y = 2;
            case 2: y = 3;
            case 4: y = 4;
          }
          return y;
        }
        """)
        cfg = module.program["main"].cfg
        multiway = [b for b in cfg if b.kind is TerminatorKind.MULTIWAY]
        assert len(multiway) == 1
        # Table covers values 0..4 plus the out-of-range slot.
        assert len(multiway[0].terminator.targets) == 6

    def test_sparse_switch_lowered_to_if_chain(self):
        module = compile_source("""
        fn main() {
          var x = input(0);
          var y = 0;
          switch (x) {
            case 0: y = 1;
            case 100: y = 2;
            case 5000: y = 3;
          }
          return y;
        }
        """)
        assert TerminatorKind.MULTIWAY not in kinds(module, "main")

    def test_short_circuit_and_creates_blocks(self):
        module = compile_source("""
        fn main() {
          var a = input(0);
          var b = input(1);
          if (a > 1 && b > 2) { output(1); }
          return 0;
        }
        """)
        conds = [
            b for b in module.program["main"].cfg
            if b.kind is TerminatorKind.CONDITIONAL
        ]
        assert len(conds) == 2  # one per operand of &&

    def test_materialized_logical_value(self):
        module = compile_source("""
        fn main() {
          var a = input(0);
          var flag = a > 1 && a < 10;
          return flag;
        }
        """)
        # Evaluating && as a value requires control flow.
        assert TerminatorKind.CONDITIONAL in kinds(module, "main")

    def test_unreachable_code_pruned(self):
        module = compile_source("""
        fn main() {
          return 1;
          output(999);
        }
        """)
        assert len(module.program["main"].cfg) == 1

    def test_implicit_return_zero(self):
        module = compile_source("fn main() { output(1); }")
        cfg = module.program["main"].cfg
        block = cfg.block(cfg.entry)
        assert block.kind is TerminatorKind.RETURN
        assert block.terminator.operand == ("c", 0)

    def test_break_and_continue_targets(self):
        module = compile_source("""
        fn main() {
          var i = 0;
          while (i < 10) {
            i = i + 1;
            if (i == 3) { continue; }
            if (i == 7) { break; }
            output(i);
          }
          return i;
        }
        """)
        validate_program(module.program)

    def test_all_programs_validate(self, mini_module):
        validate_program(mini_module.program)


class TestLoweringErrors:
    def test_undefined_variable(self):
        with pytest.raises(LangError, match="undefined variable"):
            compile_source("fn main() { return nope; }")

    def test_undefined_function(self):
        with pytest.raises(LangError, match="undefined function"):
            compile_source("fn main() { return nope(); }")

    def test_arity_mismatch(self):
        with pytest.raises(LangError, match="argument"):
            compile_source("fn f(a) { return a; } fn main() { return f(); }")

    def test_builtin_arity_checked(self):
        with pytest.raises(LangError, match="builtin"):
            compile_source("fn main() { return input(); }")

    def test_undefined_array(self):
        with pytest.raises(LangError, match="undefined array"):
            compile_source("fn main() { return a[0]; }")

    def test_redeclared_variable(self):
        with pytest.raises(LangError, match="redeclared"):
            compile_source("fn main() { var x = 1; var x = 2; return x; }")

    def test_break_outside_loop(self):
        with pytest.raises(LangError, match="break outside"):
            compile_source("fn main() { break; }")

    def test_missing_main(self):
        with pytest.raises(LangError, match="missing entry"):
            compile_source("fn helper() { return 0; }")

    def test_main_with_params_rejected(self):
        with pytest.raises(LangError, match="no parameters"):
            compile_source("fn main(x) { return x; }")

    def test_duplicate_function(self):
        with pytest.raises(LangError, match="duplicate function"):
            compile_source("fn main() { return 0; } fn main() { return 1; }")

    def test_frame_sizes_recorded(self, mini_module):
        for name, proc in mini_module.program.procedures.items():
            assert mini_module.frame_sizes[name] >= len(proc.params)
