"""Tests for the tokenizer."""

import pytest

from repro.lang import LangError, tokenize


def kinds_and_texts(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


class TestTokenize:
    def test_keywords_vs_identifiers(self):
        tokens = kinds_and_texts("fn foo while whilex")
        assert tokens == [
            ("keyword", "fn"), ("ident", "foo"),
            ("keyword", "while"), ("ident", "whilex"),
        ]

    def test_numbers(self):
        tokens = kinds_and_texts("12 3.5 0")
        assert tokens == [("int", "12"), ("float", "3.5"), ("int", "0")]

    def test_maximal_munch_operators(self):
        tokens = kinds_and_texts("a<<=b")
        # '<<' then '=' (no '<<=' operator in the language)
        assert [t for _, t in tokens] == ["a", "<<", "=", "b"]

    def test_two_char_operators(self):
        for op in ["<=", ">=", "==", "!=", "&&", "||", "<<", ">>"]:
            tokens = kinds_and_texts(f"a {op} b")
            assert ("op", op) in tokens

    def test_comments_skipped(self):
        tokens = kinds_and_texts("a // comment until eol\nb")
        assert [t for _, t in tokens] == ["a", "b"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        a, b = tokens[0], tokens[1]
        assert (a.line, a.column) == (1, 1)
        assert (b.line, b.column) == (2, 3)

    def test_unexpected_character_reports_location(self):
        with pytest.raises(LangError, match="2:1"):
            tokenize("ok\n$")

    def test_eof_token_terminates(self):
        assert tokenize("")[-1].kind == "eof"
        assert tokenize("x")[-1].kind == "eof"

    def test_underscore_identifiers(self):
        tokens = kinds_and_texts("_x x_1 input_len")
        assert all(kind == "ident" for kind, _ in tokens)
