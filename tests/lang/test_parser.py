"""Tests for the parser."""

import pytest

from repro.lang import LangError, parse
from repro.lang import ast_nodes as ast


def parse_expr(text):
    module = parse(f"fn main() {{ var x = {text}; }}")
    stmt = module.functions[0].body[0]
    assert isinstance(stmt, ast.VarDecl)
    return stmt.value


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-"
        assert isinstance(expr.left, ast.Binary) and expr.left.op == "-"
        assert isinstance(expr.right, ast.IntLit) and expr.right.value == 3

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.Binary) and expr.left.op == "+"

    def test_logical_lower_than_comparison(self):
        expr = parse_expr("a < b && c > d")
        assert isinstance(expr, ast.Logical) and expr.op == "&&"
        assert isinstance(expr.left, ast.Binary) and expr.left.op == "<"

    def test_unary_chains(self):
        expr = parse_expr("!!x")
        assert isinstance(expr, ast.Unary) and expr.op == "!"
        assert isinstance(expr.operand, ast.Unary)

    def test_call_and_index(self):
        expr = parse_expr("f(a[i], 2)")
        assert isinstance(expr, ast.Call) and expr.name == "f"
        assert isinstance(expr.args[0], ast.Index)

    def test_float_literal(self):
        expr = parse_expr("2.5")
        assert isinstance(expr, ast.FloatLit) and expr.value == 2.5


class TestStatements:
    def test_if_else_if_chain(self):
        module = parse("""
        fn main() {
          if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }
        }
        """)
        stmt = module.functions[0].body[0]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_body[0], ast.If)

    def test_array_store_vs_index_expression(self):
        module = parse("""
        fn main() {
          a[i] = 1;
          x = a[i] + 2;
        }
        """)
        store, assign = module.functions[0].body
        assert isinstance(store, ast.StoreStmt)
        assert isinstance(assign, ast.Assign)

    def test_switch_with_cases_and_default(self):
        module = parse("""
        fn main() {
          switch (x) {
            case 1: y = 1;
            case -2: y = 2;
            default: y = 0;
          }
        }
        """)
        switch = module.functions[0].body[0]
        assert isinstance(switch, ast.Switch)
        assert [c.value for c in switch.cases] == [1, -2]
        assert len(switch.default) == 1

    def test_duplicate_case_rejected(self):
        with pytest.raises(LangError, match="duplicate case"):
            parse("fn main() { switch (x) { case 1: case 1: } }")

    def test_return_with_and_without_value(self):
        module = parse("fn main() { return; } fn f() { return 1; }")
        assert module.functions[0].body[0].value is None
        assert module.functions[1].body[0].value.value == 1

    def test_expression_statement(self):
        module = parse("fn main() { output(1); }")
        assert isinstance(module.functions[0].body[0], ast.ExprStmt)

    def test_break_and_continue(self):
        module = parse("fn main() { while (1) { break; continue; } }")
        loop = module.functions[0].body[0]
        assert isinstance(loop.body[0], ast.Break)
        assert isinstance(loop.body[1], ast.Continue)


class TestTopLevel:
    def test_declarations(self):
        module = parse("""
        arr data[100];
        global counter = -5;
        global flag;
        fn helper(a, b) { return a + b; }
        fn main() { return 0; }
        """)
        assert module.arrays[0].size == 100
        assert module.globals[0].initial == -5
        assert module.globals[1].initial == 0
        assert module.functions[0].params == ("a", "b")

    def test_zero_array_size_rejected(self):
        with pytest.raises(LangError, match="positive"):
            parse("arr a[0];")

    def test_stray_token_rejected(self):
        with pytest.raises(LangError, match="declaration"):
            parse("var x = 1;")

    def test_missing_semicolon_reported(self):
        with pytest.raises(LangError, match="expected ';'"):
            parse("fn main() { var x = 1 }")
