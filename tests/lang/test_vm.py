"""Tests for the VM: semantics, tracing, and errors."""

import pytest

from repro.lang import VMError, compile_source, execute, run_and_profile


def run(source, inputs=None):
    return execute(compile_source(source), inputs or [])


class TestSemantics:
    def test_arithmetic(self):
        result = run("fn main() { return 2 + 3 * 4 - 1; }")
        assert result.returned == 13

    def test_division_floors(self):
        assert run("fn main() { return 7 / 2; }").returned == 3

    def test_division_by_zero_raises(self):
        with pytest.raises(VMError, match="division by zero"):
            run("fn main() { return 1 / input_len(); }")

    def test_comparisons_return_01(self):
        result = run("fn main() { output(3 < 5); output(5 < 3); return 0; }")
        assert result.outputs == [1, 0]

    def test_bitwise_and_shifts(self):
        result = run("fn main() { return (5 & 3) | (1 << 4) ^ 2; }")
        assert result.returned == (5 & 3) | (1 << 4) ^ 2

    def test_unary_ops(self):
        result = run("fn main() { output(-5); output(!0); output(~7); return 0; }")
        assert result.outputs == [-5, 1, ~7]

    def test_short_circuit_skips_side_effects(self):
        result = run("""
        global hits = 0;
        fn touch() { hits = hits + 1; return 1; }
        fn main() {
          var a = 0 && touch();
          var b = 1 || touch();
          return hits;
        }
        """)
        assert result.returned == 0

    def test_short_circuit_evaluates_when_needed(self):
        result = run("""
        global hits = 0;
        fn touch() { hits = hits + 1; return 1; }
        fn main() {
          var a = 1 && touch();
          var b = 0 || touch();
          return hits;
        }
        """)
        assert result.returned == 2

    def test_globals_and_arrays(self):
        result = run("""
        arr a[4];
        global g = 10;
        fn main() {
          a[0] = g;
          a[1] = a[0] * 2;
          g = a[1] + 1;
          return g;
        }
        """)
        assert result.returned == 21

    def test_recursion(self):
        result = run("""
        fn fib(n) {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        fn main() { return fib(12); }
        """)
        assert result.returned == 144

    def test_while_with_break_continue(self):
        result = run("""
        fn main() {
          var i = 0;
          var sum = 0;
          while (1) {
            i = i + 1;
            if (i > 10) { break; }
            if (i % 2) { continue; }
            sum = sum + i;
          }
          return sum;
        }
        """)
        assert result.returned == 2 + 4 + 6 + 8 + 10

    def test_switch_dispatch_and_default(self):
        source = """
        fn pick(x) {
          switch (x) {
            case 0: return 10;
            case 1: return 11;
            case 2: return 12;
            case 3: return 13;
            default: return 99;
          }
        }
        fn main() {
          output(pick(0)); output(pick(2)); output(pick(3));
          output(pick(42)); output(pick(-1));
          return 0;
        }
        """
        assert run(source).outputs == [10, 12, 13, 99, 99]

    def test_inputs_and_outputs(self):
        result = run(
            "fn main() { output(input(0) + input(1)); return input_len(); }",
            [4, 5],
        )
        assert result.outputs == [9]
        assert result.returned == 2

    def test_float_arithmetic(self):
        result = run("fn main() { var x = 1.5; var y = x * 2.0; output(y); return 0; }")
        assert result.outputs == [3.0]


class TestErrors:
    def test_array_bounds_checked(self):
        with pytest.raises(VMError, match="out of bounds"):
            run("arr a[2]; fn main() { return a[5]; }")

    def test_input_bounds_checked(self):
        with pytest.raises(VMError, match="input index"):
            run("fn main() { return input(0); }")

    def test_runaway_guard(self):
        module = compile_source("fn main() { while (1) { } return 0; }")
        with pytest.raises(VMError, match="exceeded"):
            execute(module, max_blocks=1000)

    def test_call_depth_guard(self):
        module = compile_source("""
        fn spin(n) { return spin(n + 1); }
        fn main() { return spin(0); }
        """)
        with pytest.raises(VMError, match="call depth"):
            execute(module, max_call_depth=50)


class TestTracing:
    def test_counters_populated(self, mini_module, mini_run):
        result, profile = mini_run
        assert result.blocks_executed > 0
        assert result.instructions_executed > result.blocks_executed

    def test_edge_counts_match_cfg(self, mini_module, mini_profile):
        mini_profile.check_against(mini_module.program)

    def test_flow_conservation_inner_blocks(self, mini_module, mini_profile):
        """In-flow == out-flow for every non-entry, non-exit block."""
        for proc in mini_module.program:
            edge_profile = mini_profile.procedures.get(proc.name)
            if edge_profile is None:
                continue
            cfg = proc.cfg
            for block in cfg:
                if block.block_id == cfg.entry or not block.successors:
                    continue
                inflow = edge_profile.block_entry_count(block.block_id)
                outflow = edge_profile.block_exit_count(block.block_id)
                assert inflow == outflow, (proc.name, block.block_id)

    def test_call_counts_recorded(self, mini_module, mini_profile):
        assert mini_profile.call_counts["main"] == 1
        assert mini_profile.call_counts["bucket"] > 0

    def test_trace_interleaves_procedures(self, mini_run):
        result, _ = mini_run
        procs = result.trace.trace.procedures()
        assert {"main", "bucket"} <= procs

    def test_transition_log_optional(self):
        module = compile_source("""
        fn main() {
          var i = 0;
          while (i < 5) { i = i + 1; }
          return i;
        }
        """)
        from repro.profiles import TraceBuilder
        # Default runs don't keep transition logs.
        result = execute(module)
        assert result.trace.transition_log == {}
