"""Tests for the C-style for loop."""

import pytest

from repro.cfg import natural_loops, validate_program
from repro.lang import LangError, compile_source, execute


def run(source, inputs=None):
    return execute(compile_source(source), inputs or [])


class TestForSemantics:
    def test_basic_counting(self):
        result = run("""
        fn main() {
          var total = 0;
          for (var i = 0; i < 10; i = i + 1) {
            total = total + i;
          }
          return total;
        }
        """)
        assert result.returned == 45

    def test_continue_runs_step(self):
        """C semantics: continue jumps to the step, not the condition."""
        result = run("""
        fn main() {
          var total = 0;
          for (var i = 0; i < 10; i = i + 1) {
            if (i % 2) { continue; }
            total = total + i;
          }
          return total;
        }
        """)
        assert result.returned == 0 + 2 + 4 + 6 + 8

    def test_break(self):
        result = run("""
        fn main() {
          var i = 0;
          for (; ; i = i + 1) {
            if (i == 7) { break; }
          }
          return i;
        }
        """)
        assert result.returned == 7

    def test_empty_header_parts(self):
        result = run("""
        fn main() {
          var i = 0;
          for (;;) {
            i = i + 1;
            if (i >= 3) { break; }
          }
          return i;
        }
        """)
        assert result.returned == 3

    def test_array_store_in_step(self):
        """The step runs after every body iteration, before the condition
        re-check (C semantics) — including the final one."""
        result = run("""
        arr seen[16];
        fn main() {
          var i = 0;
          for (i = 0; i < 8; seen[i] = 1) {
            i = i + 1;
          }
          return seen[8] * 10 + seen[0];
        }
        """)
        # Body increments first, so the step marks seen[1..8]; seen[0]
        # stays 0.
        assert result.returned == 10

    def test_nested_for(self):
        result = run("""
        fn main() {
          var total = 0;
          for (var i = 0; i < 4; i = i + 1) {
            for (var j = 0; j < 4; j = j + 1) {
              if (i == j) { continue; }
              total = total + 1;
            }
          }
          return total;
        }
        """)
        assert result.returned == 12

    def test_call_in_condition_and_step(self):
        result = run("""
        global calls = 0;
        fn bump() { calls = calls + 1; return calls; }
        fn main() {
          var total = 0;
          for (var i = 0; bump() < 6; i = i + 1) {
            total = total + 1;
          }
          return total;
        }
        """)
        assert result.returned == 5


class TestForLowering:
    def test_produces_one_natural_loop(self):
        module = compile_source("""
        fn main() {
          var total = 0;
          for (var i = 0; i < 5; i = i + 1) { total = total + i; }
          return total;
        }
        """)
        validate_program(module.program)
        assert len(natural_loops(module.program["main"].cfg)) == 1

    def test_equivalent_to_while(self):
        for_module = compile_source("""
        fn main() {
          var t = 0;
          for (var i = 0; i < input_len(); i = i + 1) { t = t + input(i); }
          return t;
        }
        """)
        while_module = compile_source("""
        fn main() {
          var t = 0;
          var i = 0;
          while (i < input_len()) { t = t + input(i); i = i + 1; }
          return t;
        }
        """)
        inputs = list(range(30))
        assert (
            execute(for_module, inputs, trace=False).returned
            == execute(while_module, inputs, trace=False).returned
        )

    def test_for_in_benchmark_style_alignment(self):
        """A for-heavy kernel goes through the whole alignment pipeline."""
        from repro import ALPHA_21164, align_program, evaluate_program
        from repro.lang import run_and_profile

        module = compile_source("""
        fn main() {
          var acc = 0;
          for (var i = 0; i < input_len(); i = i + 1) {
            for (var j = 0; j < 3; j = j + 1) {
              if ((input(i) + j) % 2) { acc = acc + 1; }
            }
          }
          return acc;
        }
        """)
        _, profile = run_and_profile(module, list(range(300)))
        layouts = align_program(module.program, profile, method="tsp")
        penalty = evaluate_program(
            module.program, layouts, profile, ALPHA_21164
        )
        original = evaluate_program(
            module.program,
            align_program(module.program, profile, method="original"),
            profile,
            ALPHA_21164,
        )
        assert penalty.total <= original.total
