"""Golden regression pins for every benchmark/data-set case.

The suite's behaviour is part of the experiment definition: if a workload's
outputs drift, every downstream table silently changes.  These tests pin
the exact observable behaviour (return value and key outputs) of all 12
cases.  If you intentionally change a workload, update the goldens AND
re-record EXPERIMENTS.md.
"""

import pytest

from repro.lang import execute
from repro.workloads import SUITE, compile_benchmark

#: (benchmark, dataset) -> (returned, first outputs)
GOLDENS = {
    ("com", "in"): (991, [105, 110, 116]),
    ("com", "st"): (1864, [136, 139, 143]),
    ("dod", "re"): (160, [160, 299082]),
    ("dod", "sm"): (40, [40, 295191]),
    ("eqn", "fx"): (632, [632, 0]),
    ("eqn", "ip"): (1288, [1288, 0]),
    ("esp", "ti"): (77, [77, 5, 28]),
    ("esp", "tl"): (87, [87, 1, 2]),
    ("su2", "re"): (6220, [39081, 23083, 12923]),
    ("su2", "sh"): (869, [11654, 3897, 6217]),
    ("xli", "ne"): (None, [12, 32, 9999]),   # returned = executed count
    ("xli", "q7"): (None, [40]),
}


@pytest.mark.parametrize("abbr,dataset", sorted(GOLDENS))
def test_golden_behaviour(abbr, dataset):
    module = compile_benchmark(abbr)
    result = execute(module, SUITE[abbr].inputs(dataset), trace=False)
    expected_return, expected_outputs = GOLDENS[(abbr, dataset)]
    if expected_return is not None:
        assert result.returned == expected_return
    assert result.outputs[: len(expected_outputs)] == expected_outputs


def test_goldens_cover_every_case():
    from repro.workloads import all_cases
    assert set(GOLDENS) == set(all_cases())
