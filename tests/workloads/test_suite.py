"""Tests for the benchmark suite registry (Table 1 protocol)."""

import pytest

from repro.cfg import TerminatorKind, validate_program
from repro.workloads import (
    SUITE,
    all_cases,
    benchmark_datasets,
    compile_benchmark,
    train_test_pairs,
)


class TestRegistry:
    def test_six_benchmarks_two_datasets_each(self):
        assert set(SUITE) == {"com", "dod", "eqn", "esp", "su2", "xli"}
        for abbr in SUITE:
            assert len(benchmark_datasets(abbr)) == 2

    def test_paper_dataset_names(self):
        assert benchmark_datasets("com") == ["in", "st"]
        assert benchmark_datasets("dod") == ["re", "sm"]
        assert benchmark_datasets("eqn") == ["fx", "ip"]
        assert benchmark_datasets("esp") == ["ti", "tl"]
        assert benchmark_datasets("su2") == ["re", "sh"]
        assert benchmark_datasets("xli") == ["ne", "q7"]

    def test_all_cases_count(self):
        assert len(all_cases()) == 12

    def test_train_test_pairs_use_sibling(self):
        pairs = train_test_pairs()
        assert len(pairs) == 12
        for benchmark, test, train in pairs:
            assert test != train
            assert {test, train} == set(benchmark_datasets(benchmark))

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError, match="unknown data set"):
            SUITE["com"].inputs("nope")


class TestCompiledBenchmarks:
    @pytest.mark.parametrize("abbr", sorted(SUITE))
    def test_programs_valid(self, abbr):
        module = compile_benchmark(abbr)
        validate_program(module.program)

    def test_compile_cached(self):
        assert compile_benchmark("com") is compile_benchmark("com")

    def test_xli_has_jump_table(self):
        """The interpreter's dispatch must lower to a register branch."""
        module = compile_benchmark("xli")
        kinds = [
            block.kind
            for proc in module.program
            for block in proc.cfg
        ]
        assert TerminatorKind.MULTIWAY in kinds

    def test_dod_has_jump_table(self):
        module = compile_benchmark("dod")
        kinds = [
            block.kind for proc in module.program for block in proc.cfg
        ]
        assert TerminatorKind.MULTIWAY in kinds

    def test_datasets_deterministic(self):
        for abbr, dataset in all_cases():
            assert SUITE[abbr].inputs(dataset) == SUITE[abbr].inputs(dataset)


class TestBenchmarkBehavior:
    def test_xli_q7_counts_queens_solutions(self):
        from repro.lang import execute
        module = compile_benchmark("xli")
        result = execute(module, SUITE["xli"].inputs("q7"), trace=False)
        assert result.outputs[0] == 40  # 7-queens has 40 solutions

    def test_xli_ne_square_roots(self):
        from repro.lang import execute
        module = compile_benchmark("xli")
        result = execute(module, SUITE["xli"].inputs("ne"), trace=False)
        # Newton's method converges to the integer square roots.
        assert result.outputs[0] == 12     # sqrt(144)
        assert result.outputs[1] == 32     # sqrt(1024)
        assert result.outputs[2] == 9999   # sqrt(99980001)

    def test_com_output_roundtrip_size(self):
        from repro.lang import execute
        module = compile_benchmark("com")
        inputs = SUITE["com"].inputs("in")
        result = execute(module, inputs, trace=False)
        literals, matches = result.outputs[-2], result.outputs[-1]
        assert literals + matches > 0
        # Compression must shorten the repetitive program-text input.
        assert result.returned < len(inputs)

    def test_esp_reduces_cover(self):
        from repro.lang import execute
        module = compile_benchmark("esp")
        inputs = SUITE["esp"].inputs("ti")
        result = execute(module, inputs, trace=False)
        final_cubes = result.outputs[0]
        assert 0 < final_cubes < inputs[1]  # strictly reduced
