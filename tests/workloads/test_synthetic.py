"""Tests for the synthetic CFG generator."""

import random

import pytest

from repro.cfg import TerminatorKind, validate_cfg, validate_program
from repro.workloads import (
    GeneratorConfig,
    random_biases,
    random_procedure,
    random_program,
    synthetic_workload,
)


class TestRandomProcedure:
    def test_valid_and_roughly_sized(self):
        rng = random.Random(0)
        proc = random_procedure("p", rng, GeneratorConfig(target_blocks=40))
        validate_cfg(proc.cfg)
        assert 10 <= len(proc.cfg) <= 120

    def test_deterministic_per_seed(self):
        a = random_procedure("p", random.Random(3))
        b = random_procedure("p", random.Random(3))
        assert sorted(x.block_id for x in a.cfg) == sorted(
            x.block_id for x in b.cfg
        )
        assert [x.terminator.targets for x in a.cfg] == [
            x.terminator.targets for x in b.cfg
        ]

    def test_variety_of_terminators(self):
        rng = random.Random(1)
        kinds = set()
        for i in range(10):
            proc = random_procedure(
                f"p{i}", rng, GeneratorConfig(target_blocks=50)
            )
            kinds |= {block.kind for block in proc.cfg}
        assert TerminatorKind.CONDITIONAL in kinds
        assert TerminatorKind.MULTIWAY in kinds
        assert TerminatorKind.RETURN in kinds

    def test_blocks_have_padding_sizes(self):
        proc = random_procedure("p", random.Random(2))
        assert all(block.body_words >= 1 for block in proc.cfg)


class TestRandomProgram:
    def test_program_valid(self):
        program = random_program(procedures=10, seed=4)
        validate_program(program)
        assert len(program.procedures) == 10

    def test_size_range_respected(self):
        program = random_program(
            procedures=8, seed=5, min_blocks=10, max_blocks=20
        )
        for proc in program:
            assert len(proc.cfg) <= 70  # generator overshoot is bounded


class TestSyntheticWorkload:
    def test_profile_consistent(self):
        program, profile = synthetic_workload(procedures=6, seed=6, walks=5)
        profile.check_against(program)
        for proc in program:
            assert profile[proc.name].total() > 0

    def test_biases_differ_between_seeds(self):
        program = random_program(procedures=4, seed=7)
        a = random_biases(program, 1)
        b = random_biases(program, 2)
        assert any(
            a[name].probabilities != b[name].probabilities for name in a
        )
