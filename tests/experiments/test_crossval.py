"""Tests for cross-validation helpers."""

import pytest

from repro.experiments import cross_validate, summarize_pair


@pytest.fixture(scope="module")
def dod_pair():
    return cross_validate("dod", "sm", "re", compute_bound=False)


class TestCrossValidate:
    def test_pair_shapes(self, dod_pair):
        self_case, cross_case = dod_pair
        assert not self_case.cross_validated
        assert cross_case.cross_validated
        assert self_case.dataset == cross_case.dataset == "sm"
        assert cross_case.train_dataset == "re"

    def test_summary(self, dod_pair):
        self_case, cross_case = dod_pair
        summary = summarize_pair(self_case, cross_case, "tsp")
        assert summary.label == "dod.sm"
        assert -1.0 <= summary.cross_removal <= 1.0
        assert summary.dilution == pytest.approx(
            summary.self_removal - summary.cross_removal
        )

    def test_bulk_of_benefit_remains(self, dod_pair):
        """The paper's conclusion holds on this pair: cross-validation
        keeps most of the benefit."""
        self_case, cross_case = dod_pair
        for method in ("greedy", "tsp"):
            summary = summarize_pair(self_case, cross_case, method)
            assert summary.kept_bulk
