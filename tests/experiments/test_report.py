"""Tests for report formatting helpers."""

import pytest

from repro.experiments import arithmetic_mean, format_table, geometric_mean, percent


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 120000.0]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]
        assert "120,000" in lines[4]

    def test_number_formats(self):
        text = format_table(["x"], [[0.1234], [12.34], [0.0]])
        assert "0.123" in text
        assert "12.3" in text

    def test_strings_left_numbers_right(self):
        text = format_table(["a", "b"], [["xx", 1.0], ["yyyy", 22.0]])
        rows = text.splitlines()[2:]
        assert rows[0].startswith("xx ")
        assert rows[0].rstrip().endswith("1.000")


class TestMeans:
    def test_percent(self):
        assert percent(0.336) == "33.6%"

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([4.0, 1.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
