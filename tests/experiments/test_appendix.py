"""Tests for the appendix statistics machinery."""

import numpy as np
import pytest

from repro.experiments import analyze_instances, esp_scale_instances
from repro.experiments.appendix import InstanceQuality


def random_instances(count, n, seed):
    rng = np.random.default_rng(seed)
    instances = []
    for i in range(count):
        m = rng.uniform(1, 100, size=(n, n))
        np.fill_diagonal(m, 0)
        instances.append((f"inst{i}", m))
    return instances


class TestInstanceQuality:
    def test_gap_properties(self):
        quality = InstanceQuality(
            name="x", cities=10, tour_cost=110.0, hk_bound=100.0,
            ap_bound=55.0, ap_is_tour=False, runs_finding_best=3,
            runs_total=4,
        )
        assert quality.hk_gap == pytest.approx(0.10)
        assert quality.ap_gap == pytest.approx(1.0)
        assert not quality.ap_tight

    def test_zero_bound_cases(self):
        quality = InstanceQuality(
            name="z", cities=3, tour_cost=0.0, hk_bound=0.0, ap_bound=0.0,
            ap_is_tour=True, runs_finding_best=1, runs_total=1,
        )
        assert quality.hk_gap == 0.0
        assert quality.ap_tight


class TestAnalyze:
    def test_statistics_computed(self):
        stats = analyze_instances(
            random_instances(5, 8, 0), effort="quick", seed=0
        )
        assert stats.n == 5
        assert 0 <= stats.ap_tight_count <= 5
        assert 0 <= stats.stable_count <= 5
        assert stats.mean_hk_gap >= 0
        assert stats.max_hk_gap >= stats.mean_hk_gap

    def test_esp_scale_instances_generated(self):
        instances = esp_scale_instances(procedures=8, seed=1)
        assert len(instances) >= 6
        for name, matrix in instances:
            assert matrix.shape[0] >= 3
            assert matrix.shape[0] == matrix.shape[1]
