"""Unit tests for the table/figure generators, using synthetic cases."""

import pytest

from repro.core.costmodel import CostBreakdown
from repro.core.layout import ProgramLayout
from repro.experiments.runner import CaseResult, MethodOutcome
from repro.experiments.tables import Figure2Data, Figure3Data, table4_rows
from repro.machine.timing import TimingBreakdown


def outcome(method, penalty, cycles, misses=0):
    timing = TimingBreakdown(
        instruction_cycles=cycles * 0.8,
        control_stall_cycles=cycles * 0.2,
        icache_stall_cycles=0.0,
        icache_misses=misses,
    )
    return MethodOutcome(
        method=method,
        penalty=penalty,
        breakdown=CostBreakdown(mispredict=penalty),
        timing=timing,
        align_seconds=0.01,
        layouts=ProgramLayout(),
    )


def fake_case(label, original=1000.0, greedy=500.0, tsp=400.0, bound=390.0):
    benchmark, dataset = label.split(".")
    case = CaseResult(
        benchmark=benchmark, dataset=dataset, train_dataset=dataset
    )
    case.methods["original"] = outcome("original", original, 10_000)
    case.methods["greedy"] = outcome("greedy", greedy, 9_000)
    case.methods["tsp"] = outcome("tsp", tsp, 8_800)
    case.lower_bound = bound
    return case


class TestCaseResult:
    def test_normalizations(self):
        case = fake_case("aa.x")
        assert case.normalized_penalty("greedy") == pytest.approx(0.5)
        assert case.normalized_penalty("tsp") == pytest.approx(0.4)
        assert case.normalized_bound == pytest.approx(0.39)
        assert case.normalized_cycles("tsp") == pytest.approx(0.88)
        assert case.label == "aa.x"
        assert not case.cross_validated

    def test_zero_original_degrades_gracefully(self):
        case = fake_case("bb.y", original=0.0, greedy=0.0, tsp=0.0, bound=0.0)
        assert case.normalized_penalty("tsp") == 1.0
        assert case.normalized_bound == 1.0


class TestFigure2Data:
    def make(self):
        data = Figure2Data()
        data.cases["aa.x"] = fake_case("aa.x", 1000, 500, 400, 400)
        data.cases["bb.y"] = fake_case("bb.y", 1000, 800, 700, 700)
        return data

    def test_mean_removals(self):
        data = self.make()
        assert data.mean_greedy_removal == pytest.approx((0.5 + 0.2) / 2)
        assert data.mean_tsp_removal == pytest.approx((0.6 + 0.3) / 2)
        assert data.mean_bound_removal == pytest.approx(data.mean_tsp_removal)

    def test_penalty_rows_include_mean(self):
        headers, rows = self.make().penalty_rows()
        assert headers[0] == "case"
        assert rows[-1][0] == "MEAN"
        assert len(rows) == 3

    def test_runtime_rows(self):
        headers, rows = self.make().runtime_rows()
        assert rows[0][1] == pytest.approx(0.9)
        assert rows[-1][0] == "MEAN"


class TestFigure3Data:
    def test_means_by_side(self):
        data = Figure3Data()
        data.self_cases["aa.x"] = fake_case("aa.x", 1000, 500, 400)
        data.cross_cases["aa.x"] = fake_case("aa.x", 1000, 550, 450)
        assert data.mean_removal("tsp", cross=False) == pytest.approx(0.6)
        assert data.mean_removal("tsp", cross=True) == pytest.approx(0.55)
        headers, rows = data.penalty_rows()
        assert rows[0][3] == pytest.approx(0.4)   # tsp self
        assert rows[0][4] == pytest.approx(0.45)  # tsp cross


class TestTable4:
    def test_rows(self):
        cases = {"aa.x": fake_case("aa.x")}
        headers, rows = table4_rows(cases)
        assert rows[0][0] == "aa.x"
        assert rows[0][1] == pytest.approx(1000.0)
        assert rows[0][2] == pytest.approx(390.0)
        assert rows[0][4] == pytest.approx(1000.0 / 10_000.0)
