"""Tests for checkpoint/resume and the fault-tolerant sweep machinery."""

import pytest

from repro.errors import CheckpointCorruptError
from repro.experiments import (
    CaseKey,
    ExperimentCheckpoint,
    case_from_state,
    case_to_state,
    format_table,
    run_case,
    run_cases,
)
from repro.experiments.runner import (
    DEFAULT_METHODS,
    case_lower_bound,
    run_case_cached,
)
from repro.faults import inject_faults
from repro.machine.models import ALPHA_21164


def make_key(benchmark="su2", dataset="sh", train=None):
    return CaseKey.for_case(
        benchmark, dataset, train,
        methods=DEFAULT_METHODS, model=ALPHA_21164, effort="default",
    )


def suite_table(cases):
    """The suite-style report for a list of cases (byte-comparable)."""
    rows = []
    for case in cases:
        for method, outcome in case.methods.items():
            rows.append([
                case.label, method, outcome.penalty,
                case.normalized_penalty(method), outcome.cycles,
            ])
        rows.append([
            case.label, "(lower bound)", case.lower_bound,
            case.normalized_bound, "",
        ])
    return format_table(["case", "method", "penalty", "norm", "cycles"], rows)


class TestCaseKey:
    def test_train_dataset_normalized(self):
        assert make_key("su2", "sh") == make_key("su2", "sh", "sh")

    def test_spellings_of_model_and_effort_normalized(self):
        by_object = make_key()
        by_name = CaseKey.for_case(
            "su2", "sh",
            methods=DEFAULT_METHODS, model="alpha21164", effort="default",
        )
        assert by_object == by_name

    def test_dict_roundtrip(self):
        key = make_key("su2", "sh", "re")
        assert CaseKey.from_dict(key.to_dict()) == key

    def test_different_parameters_different_keys(self):
        assert make_key("su2", "sh") != make_key("su2", "sh", "re")


class TestStateRoundtrip:
    def test_case_survives_serialization_exactly(self):
        case = run_case("su2", "sh")
        back = case_from_state(case_to_state(case))
        assert back.lower_bound == case.lower_bound
        for method in case.methods:
            a, b = case.methods[method], back.methods[method]
            assert a.penalty == b.penalty
            assert a.timing.total_cycles == b.timing.total_cycles
            assert a.breakdown.redirect == b.breakdown.redirect
            assert a.layouts["main"].order == b.layouts["main"].order
            assert a.degraded == b.degraded


class TestCheckpointFile:
    def test_record_then_reload(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        key = make_key()
        case = run_case("su2", "sh")
        ExperimentCheckpoint(path).record(key, case)

        loaded = ExperimentCheckpoint(path)
        assert len(loaded) == 1 and key in loaded
        assert loaded.get(key).lower_bound == case.lower_bound
        assert loaded.get(make_key("su2", "sh", "re")) is None

    def test_corrupt_line_skipped_and_recomputable(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        key = make_key()
        case = run_case("su2", "sh")
        with inject_faults(checkpoint_corrupt_on=1):
            ExperimentCheckpoint(path).record(key, case)

        loaded = ExperimentCheckpoint(path)
        assert loaded.corrupt_lines == [1]
        assert key not in loaded  # the case will simply be recomputed
        with pytest.raises(CheckpointCorruptError) as info:
            ExperimentCheckpoint(path, strict=True)
        assert info.value.line_number == 1

        # A clean rewrite appends; later lines win over the torn one.
        loaded.record(key, case)
        again = ExperimentCheckpoint(path)
        assert again.corrupt_lines == [1]
        assert again.get(key).lower_bound == case.lower_bound

    def test_no_resume_ignores_existing_file(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ExperimentCheckpoint(path).record(make_key(), run_case("su2", "sh"))
        fresh = ExperimentCheckpoint(path, resume=False)
        assert len(fresh) == 0


class TestTruncatedTail:
    """A crash mid-write leaves a final line without its tail (or its
    newline).  Resume must drop the partial record and keep going — and
    the next append must not concatenate onto the stump."""

    def _checkpoint_with_two_cases(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ck = ExperimentCheckpoint(path)
        key_sh, key_re = make_key("su2", "sh"), make_key("su2", "re")
        ck.record(key_sh, run_case("su2", "sh"))
        ck.record(key_re, run_case("su2", "re"))
        return path, key_sh, key_re

    def test_truncated_final_record_dropped_not_raised(self, tmp_path):
        path, key_sh, key_re = self._checkpoint_with_two_cases(tmp_path)
        # Hand-truncate the final record mid-line, newline included —
        # exactly what a crash during the last write leaves behind.
        raw = path.read_bytes()
        cut = len(raw) - (len(raw) - raw.rstrip(b"\n").rfind(b"\n")) // 2
        path.write_bytes(raw[:cut])
        assert not path.read_bytes().endswith(b"\n")

        loaded = ExperimentCheckpoint(path)  # must not raise
        assert loaded.corrupt_lines == [2]
        assert key_sh in loaded and key_re not in loaded

    def test_append_after_truncation_starts_a_fresh_line(self, tmp_path):
        path, key_sh, key_re = self._checkpoint_with_two_cases(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 40])

        resumed = ExperimentCheckpoint(path)
        case_re = run_case("su2", "re")
        resumed.record(key_re, case_re)  # recompute the lost case

        # The re-recorded case must round-trip: had the append glued
        # itself onto the stump, this load would lose it too.
        again = ExperimentCheckpoint(path)
        assert again.corrupt_lines == [2]
        assert again.get(key_re).lower_bound == case_re.lower_bound
        assert again.get(key_sh) is not None

    def test_truncation_to_non_dict_json_is_corruption(self, tmp_path):
        # A stump that still parses as JSON — just not as an object —
        # must read as a corrupt line, not an AttributeError.
        path = tmp_path / "ck.jsonl"
        key = make_key()
        case = run_case("su2", "sh")
        ExperimentCheckpoint(path).record(key, case)
        with path.open("a") as handle:
            handle.write("42\n")
        loaded = ExperimentCheckpoint(path)
        assert loaded.corrupt_lines == [2]
        assert key in loaded
        with pytest.raises(CheckpointCorruptError):
            ExperimentCheckpoint(path, strict=True)


class TestResume:
    def test_resume_recomputes_only_unfinished_cases(
        self, tmp_path, monkeypatch
    ):
        import repro.experiments.runner as runner_mod

        calls = []
        real = runner_mod.run_case

        def spy(benchmark, dataset, *args, **kwargs):
            calls.append((benchmark, dataset))
            return real(benchmark, dataset, *args, **kwargs)

        monkeypatch.setattr(runner_mod, "run_case", spy)
        path = tmp_path / "ck.jsonl"

        # First (interrupted) run completes only su2.sh.
        first = run_cases([("su2", "sh")], checkpoint=ExperimentCheckpoint(path))
        assert first.computed == 1
        assert calls == [("su2", "sh")]

        # The resumed run recomputes only the unfinished case.
        second = run_cases(
            [("su2", "sh"), ("su2", "re")],
            checkpoint=ExperimentCheckpoint(path),
        )
        assert calls == [("su2", "sh"), ("su2", "re")]
        assert second.from_checkpoint == 1 and second.computed == 1

    def test_resumed_table_is_byte_identical(self, tmp_path):
        specs = [("su2", "sh"), ("su2", "re")]
        uninterrupted = run_cases(specs)
        expected = suite_table(uninterrupted.cases)

        # Simulate an interrupted run that finished only the first case,
        # then resume through a freshly loaded checkpoint.
        path = tmp_path / "ck.jsonl"
        run_cases(specs[:1], checkpoint=ExperimentCheckpoint(path))
        resumed = run_cases(specs, checkpoint=ExperimentCheckpoint(path))
        assert resumed.from_checkpoint == 1
        assert suite_table(resumed.cases) == expected


class TestSweepFaultTolerance:
    def test_failures_retried_once_then_skipped(self, monkeypatch):
        import repro.experiments.runner as runner_mod

        attempts = {"n": 0}

        def boom(*args, **kwargs):
            attempts["n"] += 1
            raise RuntimeError("kaboom")

        monkeypatch.setattr(runner_mod, "run_case", boom)
        result = run_cases([("su2", "sh")])
        assert result.cases == []
        assert attempts["n"] == 2  # original try + one retry
        (skip,) = result.skipped
        assert skip.label == "su2.sh"
        assert skip.attempts == 2
        assert "kaboom" in skip.error and "RuntimeError" in skip.error

    def test_single_retry_recovers_a_flaky_case(self, monkeypatch):
        import repro.experiments.runner as runner_mod

        real = runner_mod.run_case
        state = {"failed": False}

        def flaky(*args, **kwargs):
            if not state["failed"]:
                state["failed"] = True
                raise RuntimeError("transient")
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "run_case", flaky)
        result = run_cases([("su2", "sh")])
        assert len(result.cases) == 1 and not result.skipped

    def test_figure2_records_skips_instead_of_raising(self, monkeypatch):
        import repro.experiments.tables as tables

        def boom(*args, **kwargs):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(tables, "run_case_cached", boom)
        data = tables.figure2_data()
        assert data.cases == {}
        assert data.skipped and all("kaboom" in s.error for s in data.skipped)


class TestCacheNormalization:
    def test_spellings_share_one_cache_entry(self):
        a = run_case_cached("su2", "sh")
        b = run_case_cached("su2", "sh", "sh")
        c = run_case_cached("su2", "sh", effort="default")
        assert a is b is c

    def test_lower_bound_normalized_before_cache(self):
        first = case_lower_bound("su2", "sh")
        size = case_lower_bound.cache_info().currsize
        second = case_lower_bound("su2", "sh", effort="default")
        assert first == second
        assert case_lower_bound.cache_info().currsize == size
