"""Tests for the experiment runner (one small benchmark case end to end).

These use the fastest benchmark cases (dod.sm / su2.sh / xli.ne) so the
full-pipeline behaviour is covered without the cost of the figure sweeps.
"""

import pytest

from repro.experiments import profiled_run, run_case
from repro.experiments.runner import run_case_cached


@pytest.fixture(scope="module")
def dod_sm_case():
    return run_case("dod", "sm")


class TestProfiledRun:
    def test_cached(self):
        a = profiled_run("su2", "sh")
        b = profiled_run("su2", "sh")
        assert a is b

    def test_contents(self):
        run = profiled_run("su2", "sh")
        assert run.instructions > 0
        assert len(run.trace) == run.blocks
        assert run.profile["main"].total() > 0


class TestRunCase:
    def test_methods_present(self, dod_sm_case):
        assert set(dod_sm_case.methods) == {
            "original", "greedy", "tsp", "exttsp", "chain-merge"
        }
        assert dod_sm_case.label == "dod.sm"
        assert not dod_sm_case.cross_validated

    def test_ordering_invariants(self, dod_sm_case):
        case = dod_sm_case
        assert case.methods["tsp"].penalty <= case.methods["greedy"].penalty + 1e-6
        assert (
            case.methods["greedy"].penalty
            <= case.methods["original"].penalty + 1e-6
        )
        assert case.lower_bound <= case.methods["tsp"].penalty + 1e-6

    def test_normalizations(self, dod_sm_case):
        case = dod_sm_case
        assert case.normalized_penalty("original") == pytest.approx(1.0)
        assert 0 < case.normalized_penalty("tsp") <= 1.0
        assert 0 < case.normalized_bound <= 1.0
        assert 0 < case.normalized_cycles("tsp") <= 1.0 + 1e-9

    def test_timing_populated(self, dod_sm_case):
        for outcome in dod_sm_case.methods.values():
            assert outcome.cycles > 0
            assert outcome.timing.instruction_cycles > 0

    def test_cross_validated_case(self):
        case = run_case("dod", "sm", "re", compute_bound=False)
        assert case.cross_validated
        assert case.train_dataset == "re"
        # Cross-trained TSP can be worse than self-trained, but never
        # (up to noise) better than the self-trained lower bound... just
        # check basic sanity here:
        assert case.methods["tsp"].penalty > 0

    def test_run_case_cached_memoizes(self):
        a = run_case_cached("su2", "sh")
        b = run_case_cached("su2", "sh")
        assert a is b
