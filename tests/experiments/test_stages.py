"""Tests for the stage timer (Table 2 machinery)."""

import pytest

from repro.experiments import time_stages, worst_dataset
from repro.experiments.stages import STAGE_NAMES


class TestStages:
    def test_all_stages_timed(self):
        times = time_stages("su2", "sh", effort="quick")
        for name in STAGE_NAMES:
            assert getattr(times, name) >= 0.0
        # The stages that do real work must take measurable time.
        assert times.ir > 0
        assert times.profiling_run > 0
        assert times.tsp_solver > 0

    def test_as_row_shape(self):
        times = time_stages("xli", "ne", effort="quick")
        row = times.as_row()
        assert row[0] == "xli"
        assert row[1] == "ne"
        # benchmark, dataset, the stage columns, and the degraded count.
        assert len(row) == 2 + len(STAGE_NAMES) + 1
        assert len(row) == len(times.HEADERS)
        assert row[-1] == len(times.degraded_procs)

    def test_worst_dataset_picks_longer_run(self):
        assert worst_dataset("su2") == "re"
        assert worst_dataset("xli") == "q7"
        assert worst_dataset("dod") == "re"
