"""Tests for JSON export of experiment results."""

import json

import pytest

from repro.experiments.export import (
    case_to_dict,
    cases_to_json,
    figure2_to_json,
    figure3_to_json,
)
from repro.experiments.tables import Figure2Data, Figure3Data
from tests.experiments.test_tables import fake_case


class TestExport:
    def test_case_to_dict_fields(self):
        payload = case_to_dict(fake_case("aa.x"))
        assert payload["benchmark"] == "aa"
        assert payload["lower_bound"] == pytest.approx(390.0)
        assert payload["methods"]["tsp"]["normalized_penalty"] == pytest.approx(0.4)
        assert not payload["cross_validated"]

    def test_cases_to_json_roundtrips(self):
        text = cases_to_json({"aa.x": fake_case("aa.x")})
        payload = json.loads(text)
        assert "aa.x" in payload
        assert payload["aa.x"]["methods"]["greedy"]["penalty"] == 500.0

    def test_figure2_export(self):
        data = Figure2Data()
        data.cases["aa.x"] = fake_case("aa.x")
        payload = json.loads(figure2_to_json(data))
        assert payload["means"]["tsp_removal"] == pytest.approx(0.6)
        assert "aa.x" in payload["cases"]

    def test_figure3_export(self):
        data = Figure3Data()
        data.self_cases["aa.x"] = fake_case("aa.x")
        data.cross_cases["aa.x"] = fake_case("aa.x", tsp=450.0)
        payload = json.loads(figure3_to_json(data))
        assert payload["means"]["self"]["tsp"] == pytest.approx(0.6)
        assert payload["means"]["cross"]["tsp"] == pytest.approx(0.55)
