"""Appendix — DTSP solver and bound quality statistics.

Paper (esp.tl's 179 procedure instances):
* 71/179 have AP bound == optimum; the median gap of the rest is 30%, with
  15 instances worse than 10x — AP-based methods are NOT enough here;
* iterated 3-Opt finds its best tour on all 10 runs for 128/179 procedures;
* HK bound within 0.3% of the tours on average, never more than 0.9% below
  per program; worst per-procedure gap 14%.

Ours: the same statistics over the real esp procedures plus an esp-scale
synthetic program (DESIGN.md documents why the instance count is restored
synthetically).  The paper's shape is asserted: a substantial fraction of
instances with a *loose* AP bound, high multi-run stability, HK gaps with
a long tail on contended instances.
"""

from statistics import median

from repro.core import build_alignment_instance
from repro.experiments import (
    analyze_instances,
    esp_scale_instances,
    format_table,
    profiled_run,
)
from repro.machine import ALPHA_21164
from repro.tsp.solve import PAPER
from repro.workloads import compile_benchmark


def collect_instances():
    instances = []
    module = compile_benchmark("esp")
    run = profiled_run("esp", "tl")
    for proc in module.program:
        profile = run.profile.procedures.get(proc.name)
        if profile is None or profile.total() == 0:
            continue
        matrix = build_alignment_instance(
            proc.cfg, profile, ALPHA_21164
        ).matrix
        instances.append((f"esp.{proc.name}", matrix))
    instances.extend(esp_scale_instances(procedures=40, seed=7))
    return instances


def test_appendix_tsp_quality(benchmark, emit):
    instances = collect_instances()
    stats = benchmark.pedantic(
        analyze_instances,
        args=(instances,),
        kwargs={"effort": PAPER, "seed": 0},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    rows = [
        ["instances analyzed", stats.n],
        ["AP bound tight (== best tour)", stats.ap_tight_count],
        ["median AP gap of loose instances",
         f"{100 * stats.median_ap_gap_of_loose:.1f}%"],
        ["best tour found on all solver runs", stats.stable_count],
        ["mean HK gap", f"{100 * stats.mean_hk_gap:.2f}%"],
        ["max HK gap", f"{100 * stats.max_hk_gap:.1f}%"],
        ["optimality certified (branch & bound)", stats.certified_count],
        ["tours provably optimal", stats.optimal_tour_count],
    ]
    emit("appendix_tsp_quality", format_table(
        ["statistic", "value"], rows,
        title="Appendix: DTSP solver and lower-bound quality "
              "(esp procedures + esp-scale synthetic program)",
    ))

    assert stats.n >= 30
    # A majority of alignment instances do NOT have a tight AP bound
    # (paper: 108 of 179 loose, median gap 30%) — the reason AP-patching
    # approaches are insufficient and iterated 3-Opt is used.
    loose = stats.n - stats.ap_tight_count
    assert loose >= stats.n // 5
    assert loose >= 10
    # Median AP gap of the loose instances is large (paper: 30%).
    assert stats.median_ap_gap_of_loose > 0.05
    # Iterated 3-Opt is stable: the best tour is found on every run for a
    # large majority of instances (paper: 128/179 = 72%).
    assert stats.stable_count > 0.5 * stats.n
    # Near-optimality, the headline claim: branch and bound certifies the
    # overwhelming majority of instances, and on those the iterated 3-Opt
    # tour IS the optimum (the paper could only show <= 0.3% vs HK; our
    # exact solver shows 0%).
    assert stats.certified_count > 0.9 * stats.n
    assert stats.optimal_tour_count > 0.95 * stats.certified_count
    # Raw HK: some instances are LP-tight, but our alignment instances
    # carry a genuine integrality-gap tail (contended hot fall-throughs),
    # unlike the paper's 0.3% mean — see EXPERIMENTS.md for the divergence
    # discussion (our certified bound replaces HK everywhere it matters).
    tight_hk = sum(1 for i in stats.instances if i.hk_gap < 0.01)
    assert tight_hk >= stats.n // 5
    assert median(sorted(i.hk_gap for i in stats.instances)) < 1.0
