"""Ablation A3 — machine-model sensitivity (the paper's §6: "we would like
to investigate applying our method to other machine models").

Runs the aligner under a shorter pipeline (ALPHA 21064-like, 4-cycle
mispredict), the paper's ALPHA 21164, and a deep pipeline (12-cycle
mispredict): the *absolute* cycles recovered by alignment grow with
pipeline depth, while near-optimality versus the certified bound holds on
every machine.
"""

import pytest

from repro.core import align_program, evaluate_program, lower_bound_program
from repro.experiments import format_table, profiled_run
from repro.machine import ALPHA_21064, ALPHA_21164, DEEP_PIPE
from repro.workloads import compile_benchmark

MODELS = (ALPHA_21064, ALPHA_21164, DEEP_PIPE)
CASES = (("com", "in"), ("eqn", "fx"), ("xli", "q7"))


def compute():
    rows = []
    savings_by_model = {model.name: 0.0 for model in MODELS}
    gaps = []
    for abbr, dataset in CASES:
        module = compile_benchmark(abbr)
        profile = profiled_run(abbr, dataset).profile
        for model in MODELS:
            original = evaluate_program(
                module.program,
                align_program(module.program, profile, method="original",
                              model=model),
                profile,
                model,
            ).total
            layouts = align_program(
                module.program, profile, method="tsp", model=model
            )
            aligned = evaluate_program(
                module.program, layouts, profile, model
            ).total
            bound = lower_bound_program(
                module.program, profile, model=model
            ).total
            savings_by_model[model.name] += original - aligned
            if aligned > 0:
                gaps.append((aligned - bound) / aligned)
            rows.append([
                f"{abbr}.{dataset}", model.name, original, aligned, bound,
                aligned / original if original else 1.0,
            ])
    return rows, savings_by_model, gaps


def test_ablation_machine_models(benchmark, emit):
    rows, savings, gaps = benchmark.pedantic(
        compute, rounds=1, iterations=1, warmup_rounds=0
    )
    emit("ablation_machine_models", format_table(
        ["case", "model", "original", "tsp", "bound", "normalized"],
        rows,
        title="Ablation A3: machine-model sensitivity",
    ))

    # Alignment cannot recover mispredict cycles (the C/I prediction counts
    # are layout-independent, §2.2), so the 21064 — which differs from the
    # 21164 only in mispredict latency — yields *identical* savings...
    assert savings["alpha21064"] == pytest.approx(savings["alpha21164"])
    # ...while the deep pipe's larger misfetch/register penalties leave
    # strictly more cycles on the table for alignment to recover.
    assert savings["deep-pipe"] > 1.5 * savings["alpha21164"]
    # Near-optimality holds on every machine model.
    assert max(gaps) < 0.02
