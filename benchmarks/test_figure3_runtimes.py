"""Figure 3 (bottom) — cross-validated execution times.

Paper: run-time improvements dilute from 1.19%/2.01% (greedy/TSP, self) to
1.06%/1.66% cross-validated; "cross-validation reduced some of the gap
between the execution times of the greedy and TSP-based layouts".

Ours: same protocol on the timing simulator.
"""

from repro.experiments import format_table


def test_figure3_runtimes(benchmark, emit, figure3):
    headers, rows = benchmark.pedantic(
        figure3.runtime_rows, rounds=1, iterations=1, warmup_rounds=0
    )
    emit("figure3_runtimes", format_table(
        headers, rows,
        title="Figure 3 (bottom): cross-validated normalized execution times",
    ))

    greedy_self = figure3.mean_speedup("greedy", cross=False)
    greedy_cross = figure3.mean_speedup("greedy", cross=True)
    tsp_self = figure3.mean_speedup("tsp", cross=False)
    tsp_cross = figure3.mean_speedup("tsp", cross=True)

    # Cross-validation dilutes but preserves most of the speedup.
    assert greedy_cross <= greedy_self + 1e-9
    assert tsp_cross <= tsp_self + 1e-9
    assert greedy_cross > 0.7 * greedy_self
    assert tsp_cross > 0.7 * tsp_self
    # Ranking preserved on average.
    assert tsp_cross >= greedy_cross - 1e-9

    # Every cross-validated layout still beats (or ties) the original.
    for label, case in figure3.cross_cases.items():
        assert case.normalized_cycles("tsp") <= 1.005, label
        assert case.normalized_cycles("greedy") <= 1.005, label
