"""Table 4 — original control penalties, lower bounds, and run times.

Paper: raw statistics per case under the original layout; su2cor stands
out with "a very low ratio of control penalties to execution time", which
is why alignment barely moves its run time.

Ours: the same table from the simulator, with the certified lower bound.
"""

from repro.experiments import format_table, table4_rows


def test_table4(benchmark, emit, figure2):
    headers, rows = benchmark.pedantic(
        table4_rows, args=(figure2.cases,), rounds=1, iterations=1,
        warmup_rounds=0,
    )
    emit("table4_baseline", format_table(
        headers, rows,
        title="Table 4: original penalties, lower bounds, original run times",
    ))
    assert len(rows) == 12
    ratios = {row[0]: row[4] for row in rows}

    for label, case in figure2.cases.items():
        # The bound can never exceed the original layout's penalty.
        assert case.lower_bound <= case.methods["original"].penalty + 1e-6

    # su2cor has the lowest penalty/time ratio of the suite (paper §4.1).
    su2_ratio = max(ratios["su2.re"], ratios["su2.sh"])
    others = [v for k, v in ratios.items() if not k.startswith("su2")]
    assert su2_ratio < min(others)
