"""Shared fixtures for the benchmark harness.

Each bench regenerates one of the paper's tables or figures: it computes
the data (cached per session), writes the formatted table to
``benchmarks/results/<name>.txt``, prints it, and asserts the paper's
qualitative shape.  The ``benchmark`` fixture times the representative
computation so ``pytest benchmarks/ --benchmark-only`` reports costs.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import figure2_data, figure3_data

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Write a table to the results directory and echo it."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return _emit


@pytest.fixture(scope="session")
def figure2():
    """All twelve train-=-test cases (shared by several benches)."""
    return figure2_data()


@pytest.fixture(scope="session")
def figure3():
    """Self + cross-validated cases (reuses figure2's cached cases)."""
    return figure3_data()
