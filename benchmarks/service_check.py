#!/usr/bin/env python
"""End-to-end chaos scenarios for the alignment service.

Two scenarios, selected with ``--scenario`` (default ``soak``):

**soak** — boots a real ``repro serve`` subprocess with ``$REPRO_CHAOS``
sabotage armed — pipeline workers crash and per-attempt deadlines expire
on a schedule — then fires a concurrent request burst at it and asserts
the serving contract:

1. **Typed back-pressure** — every request is answered: 200 with a
   response body, or a typed 429 (shed).  No connection resets, no
   untyped 500s.
2. **Accounting closes** — the service's own counters satisfy
   ``admitted + shed == submitted``, and the client saw exactly the
   same split.
3. **No unexplained degradation** — every 200 carries either a verified
   layout or an explicitly accounted fallback: ``degraded`` rungs
   (including ``breaker_fallback``), a ``quarantined`` procedure map,
   or a ``status: quarantined`` verification report.  Nothing silent.
4. **The service stays healthy** — ``/healthz`` is green before, during,
   and after the burst; chaos only ever degrades responses.
5. **Graceful drain** — SIGTERM exits 0 after finishing admitted work,
   and the post-drain trace passes ``repro trace validate``.

**recovery** — boots a journaled server, SIGKILLs it mid-burst, restarts
it on the same journal, and asserts the crash-consistency contract:

1. **No admitted request lost** — every journal-visible ``admitted``
   record without a terminal record before the kill has a ``completed``
   or ``failed`` record after recovery drains.
2. **No completed request recomputed** — every request the first life
   completed is re-served from the journal (``served_from: "journal"``,
   byte-identical layouts), after re-verification against a freshly
   computed Held–Karp floor; the second life's worker computes only the
   re-enqueued orphans.
3. **Accounting closes across the crash** — replayed ⊆ admitted, the
   restarted gate's ``submitted == admitted + shed`` holds, and zero
   replayed responses fail re-verification.
4. **Graceful end state** — ``/readyz`` reports ``durability: on``, the
   final SIGTERM drain exits 0, and the recovered journal + trace
   validate (saved under ``--artifacts`` for CI upload).

``--scenario all`` runs both.  Exit code 0 when every assertion holds,
1 otherwise.

Usage::

    PYTHONPATH=src python benchmarks/service_check.py
    PYTHONPATH=src python benchmarks/service_check.py --requests 80 --clients 8
    PYTHONPATH=src python benchmarks/service_check.py --scenario recovery --jobs 4
"""

from __future__ import annotations

import argparse
import collections
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import threading

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SOAK_SOURCE = """
fn main() {
  var i = 0;
  var acc = 0;
  var n = input_len();
  while (i < n) {
    var v = input(i);
    if (v % 2 == 0) { acc = acc + v; } else { acc = acc - 1; }
    if (v > 10) { acc = acc + 2; }
    i = i + 1;
  }
  output(acc);
  return acc;
}
"""


def check(condition: bool, message: str, failures: list[str]) -> None:
    print(("ok:   " if condition else "FAIL: ") + message)
    if not condition:
        failures.append(message)


def start_server(
    chaos: str,
    trace: str,
    capacity: int,
    *,
    jobs: int = 2,
    journal: str | None = None,
    port: int = 0,
) -> tuple:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_CHAOS"] = chaos
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", str(port),
        "--capacity", str(capacity),
        "--jobs", str(jobs),
        "--trace", trace,
    ]
    if journal:
        argv += ["--journal", journal]
    proc = subprocess.Popen(
        argv,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    announce = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", announce)
    if not match:
        proc.kill()
        raise SystemExit(f"server did not announce a port: {announce!r}")
    return proc, f"http://127.0.0.1:{match.group(1)}"


def soak(base_url: str, requests: int, clients: int) -> dict:
    """Fire the burst; return per-request outcomes and client-side tallies."""
    from repro.service.client import get_json, request_alignment

    lock = threading.Lock()
    outcomes = collections.Counter()
    problems: list[str] = []
    health_flaps = 0

    def one_request(i: int) -> None:
        nonlocal health_flaps
        payload = {
            "source": SOAK_SOURCE,
            "inputs": list(range(12 + i % 5)),
            "method": "tsp",
            "seed": i,
            # Mixed deadlines keep the degradation ladder in play.
            "deadline_ms": [None, 30_000, 50][i % 3],
        }
        if payload["deadline_ms"] is None:
            del payload["deadline_ms"]
        try:
            status, body = request_alignment(base_url, payload, timeout=300)
        except OSError as exc:
            with lock:
                outcomes["transport_error"] += 1
                problems.append(f"request {i}: transport error {exc}")
            return
        with lock:
            if status == 200 and body.get("status") == "ok":
                if body.get("verified"):
                    outcomes["ok_verified"] += 1
                else:
                    outcomes["ok_unverified"] += 1
                    problems.append(f"request {i}: 200 without verification")
                if body.get("degraded"):
                    outcomes["degraded"] += 1
                if body.get("quarantined"):
                    outcomes["proc_quarantined"] += 1
            elif status == 200 and body.get("status") == "quarantined":
                outcomes["quarantined_response"] += 1
            elif status == 429:
                outcomes["shed"] += 1
            elif status == 503:
                outcomes["unavailable"] += 1
            else:
                outcomes[f"http_{status}"] += 1
                problems.append(
                    f"request {i}: unexpected {status}: "
                    f"{body.get('error', body)}"
                )
        # Health must stay green while chaos rages.
        health, _ = get_json(base_url + "/healthz", timeout=30)
        if health != 200:
            with lock:
                health_flaps += 1

    threads: list[threading.Thread] = []
    ids = iter(range(requests))
    def client_loop() -> None:
        while True:
            try:
                i = next(ids)
            except StopIteration:
                return
            one_request(i)

    for _ in range(clients):
        thread = threading.Thread(target=client_loop)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    return {
        "outcomes": dict(outcomes),
        "problems": problems,
        "health_flaps": health_flaps,
    }


def run_soak(args) -> int:
    from repro.service.client import get_json, wait_ready

    trace = os.path.join(
        tempfile.mkdtemp(prefix="repro-service-trace-"), "service.jsonl"
    )
    failures: list[str] = []
    proc, base_url = start_server(
        args.chaos, trace, args.capacity, jobs=args.jobs
    )
    drain_timeout = False
    try:
        check(wait_ready(base_url), "server became ready", failures)
        check(get_json(base_url + "/healthz")[0] == 200,
              "healthz green before the burst", failures)

        print(f"soak: {args.requests} requests / {args.clients} clients, "
              f"chaos {args.chaos!r} ...")
        result = soak(base_url, args.requests, args.clients)
        outcomes = result["outcomes"]
        print("outcomes: " + json.dumps(outcomes, sort_keys=True))

        for problem in result["problems"]:
            check(False, problem, failures)
        check(result["health_flaps"] == 0,
              "healthz stayed green through the burst", failures)
        check(outcomes.get("transport_error", 0) == 0,
              "no dropped connections", failures)

        answered = sum(
            outcomes.get(k, 0)
            for k in ("ok_verified", "quarantined_response", "shed",
                      "unavailable")
        )
        check(answered == args.requests,
              f"every request answered with a typed outcome "
              f"({answered}/{args.requests})", failures)

        status, counters = get_json(base_url + "/counters", timeout=30)
        check(status == 200, "counters endpoint responds", failures)
        gate = counters.get("gate", {})
        check(
            gate.get("admitted", -1) + gate.get("shed", -1)
            == gate.get("submitted", -2),
            f"service accounting closes: admitted {gate.get('admitted')} "
            f"+ shed {gate.get('shed')} == submitted {gate.get('submitted')}",
            failures,
        )
        served = (
            counters.get("completed", 0) + counters.get("quarantined", 0)
        )
        check(served == gate.get("admitted", -1),
              f"every admitted request served ({served} of "
              f"{gate.get('admitted')})", failures)
        client_accepted = (
            outcomes.get("ok_verified", 0)
            + outcomes.get("quarantined_response", 0)
        )
        check(client_accepted == gate.get("admitted", -1),
              "client-side and server-side admission agree", failures)
        print(
            f"degradation: {outcomes.get('degraded', 0)} degraded, "
            f"{outcomes.get('proc_quarantined', 0)} with quarantined "
            f"procedures, {counters.get('breaker_fallbacks', 0)} breaker "
            f"fallbacks"
        )

        check(get_json(base_url + "/healthz")[0] == 200,
              "healthz green after the burst", failures)

        proc.send_signal(signal.SIGTERM)
        try:
            exit_code = proc.wait(timeout=120)
        except subprocess.TimeoutExpired:
            drain_timeout = True
            proc.kill()
            exit_code = proc.wait()
        check(not drain_timeout, "SIGTERM drain finished in time", failures)
        check(exit_code == 0, f"drain exit code 0 (got {exit_code})",
              failures)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    validate = subprocess.run(
        [sys.executable, "-m", "repro.cli", "trace", "validate", trace],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        capture_output=True,
        text=True,
    )
    check(validate.returncode == 0,
          f"post-drain trace validates ({trace})", failures)
    if validate.stdout.strip():
        print(validate.stdout.strip())

    if failures:
        print(f"\n{len(failures)} failure(s)")
        return 1
    print("\nservice chaos soak: all checks passed")
    return 0


# Recovery sizing: requests stay small because the second life re-solves
# every orphan.  All requests launch at once so the journal holds many
# ``admitted`` records when the kill lands after KILL_AFTER completions.
RECOVERY_REQUESTS = 10
RECOVERY_KILL_AFTER = 3


def run_recovery(args) -> int:
    import shutil
    import time

    from repro.service.client import get_json, request_alignment, wait_ready
    from repro.service.journal import RequestJournal

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-recovery-"))
    journal = workdir / "journal.jsonl"
    trace1 = workdir / "trace-life1.jsonl"
    trace2 = workdir / "trace-life2.jsonl"
    failures: list[str] = []

    print(f"recovery: {RECOVERY_REQUESTS} requests, SIGKILL after "
          f"{RECOVERY_KILL_AFTER} completions, --jobs {args.jobs} ...")
    proc, base_url = start_server(
        "", str(trace1), args.capacity, jobs=args.jobs, journal=str(journal)
    )
    outcomes = collections.Counter()
    lock = threading.Lock()

    def one_request(i: int) -> None:
        payload = {
            "source": SOAK_SOURCE,
            "inputs": list(range(14 + i % 3)),
            "method": "tsp",
            "seed": 40_000 + i,
        }
        try:
            status, _ = request_alignment(base_url, payload, timeout=300)
            with lock:
                outcomes[f"http_{status}"] += 1
        except OSError:
            # Expected once the SIGKILL lands mid-request.
            with lock:
                outcomes["transport_error"] += 1

    try:
        check(wait_ready(base_url), "first life became ready", failures)
        threads = [
            threading.Thread(target=one_request, args=(i,))
            for i in range(RECOVERY_REQUESTS)
        ]
        for thread in threads:
            thread.start()

        # Watch the journal from outside the process — exactly what a
        # supervisor could see — and kill without warning.
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            if len(RequestJournal(journal).load().completed) \
                    >= RECOVERY_KILL_AFTER:
                break
            time.sleep(0.05)
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        print("killed first life; client outcomes so far: "
              + json.dumps(dict(outcomes), sort_keys=True))
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    for thread in threads:
        thread.join(timeout=60)

    pre = RequestJournal(journal).load()
    print(f"journal after kill: {pre.records.get('admitted', 0)} admitted, "
          f"{len(pre.completed)} completed, {len(pre.orphans)} orphaned, "
          f"torn_tail={pre.torn_tail}")
    check(len(pre.completed) >= RECOVERY_KILL_AFTER,
          f"kill landed after >= {RECOVERY_KILL_AFTER} completions "
          f"({len(pre.completed)})", failures)
    check(len(pre.orphans) >= 1,
          f"kill landed mid-burst: {len(pre.orphans)} admitted requests "
          f"were still in flight", failures)

    proc2, base2 = start_server(
        "", str(trace2), args.capacity, jobs=args.jobs, journal=str(journal)
    )
    drain_timeout = False
    recovery = {}
    try:
        check(wait_ready(base2, attempts=600),
              "second life replayed the journal and became ready", failures)

        # Wait for every re-enqueued orphan to reach a terminal record.
        deadline = time.monotonic() + 300
        counters: dict = {}
        while time.monotonic() < deadline:
            status, counters = get_json(base2 + "/counters", timeout=30)
            recovery = counters.get("recovery") or {}
            terminal = (
                counters.get("completed", 0)
                + counters.get("failed", 0)
                + counters.get("quarantined", 0)
            )
            if status == 200 and terminal >= recovery.get("reenqueued", -1):
                break
            time.sleep(0.2)
        print("recovery counters: " + json.dumps(recovery, sort_keys=True))

        check(recovery.get("replayed_completed") == len(pre.completed),
              f"every pre-kill completion replayed from the journal "
              f"({recovery.get('replayed_completed')} of "
              f"{len(pre.completed)})", failures)
        check(recovery.get("reverify_failed") == 0,
              "zero replayed responses failed re-verification", failures)
        check(recovery.get("reenqueued") == len(pre.orphans),
              f"every orphan re-enqueued ({recovery.get('reenqueued')} of "
              f"{len(pre.orphans)})", failures)

        # No completed request recomputed: resending a pre-kill payload
        # is served from the journal with byte-identical layouts.
        replayed_ok = 0
        for key, response in pre.completed.items():
            status, body = request_alignment(
                base2, pre.payloads[key], timeout=300
            )
            if (status == 200 and body.get("served_from") == "journal"
                    and body.get("layouts") == response.get("layouts")):
                replayed_ok += 1
            else:
                check(False,
                      f"resent {key[:12]} not served from journal "
                      f"(status {status})", failures)
        check(replayed_ok == len(pre.completed),
              f"resent completions served from the journal, byte-identical "
              f"({replayed_ok}/{len(pre.completed)})", failures)

        # No admitted request lost: every pre-kill orphan now has a
        # terminal record in the journal.
        final = RequestJournal(journal).load()
        resolved = sum(
            1 for key in pre.orphans
            if key in final.completed or key in final.failed
        )
        check(resolved == len(pre.orphans),
              f"every orphaned admission reached a terminal record "
              f"({resolved}/{len(pre.orphans)})", failures)

        status, counters = get_json(base2 + "/counters", timeout=30)
        gate = counters.get("gate", {})
        check(
            gate.get("admitted", -1) + gate.get("shed", -1)
            == gate.get("submitted", -2),
            "second life's admission accounting closes", failures,
        )
        status, ready = get_json(base2 + "/readyz", timeout=30)
        check(status == 200 and ready.get("durability") == "on",
              "readyz reports durability on after recovery", failures)

        proc2.send_signal(signal.SIGTERM)
        try:
            exit_code = proc2.wait(timeout=120)
        except subprocess.TimeoutExpired:
            drain_timeout = True
            proc2.kill()
            exit_code = proc2.wait()
        check(not drain_timeout, "SIGTERM drain finished in time", failures)
        check(exit_code == 0, f"drain exit code 0 (got {exit_code})",
              failures)
    finally:
        if proc2.poll() is None:
            proc2.kill()
            proc2.wait()

    validate = subprocess.run(
        [sys.executable, "-m", "repro.cli", "trace", "validate", str(trace2)],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        capture_output=True,
        text=True,
    )
    check(validate.returncode == 0,
          f"second life's trace validates ({trace2})", failures)

    if args.artifacts:
        artifacts = pathlib.Path(args.artifacts)
        artifacts.mkdir(parents=True, exist_ok=True)
        for source in (journal, trace1, trace2):
            if source.exists():
                shutil.copy2(source, artifacts / source.name)
        summary = {
            "pre_kill": {
                "admitted": pre.records.get("admitted", 0),
                "completed": len(pre.completed),
                "orphans": len(pre.orphans),
                "torn_tail": pre.torn_tail,
            },
            "recovery": recovery,
            "client_outcomes": dict(outcomes),
            "failures": failures,
        }
        (artifacts / "recovery-summary.json").write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )
        print(f"artifacts saved under {artifacts}")

    if failures:
        print(f"\n{len(failures)} failure(s)")
        return 1
    print("\nservice crash recovery: all checks passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", choices=["soak", "recovery", "all"],
                        default="soak",
                        help="which contract to exercise (default: soak)")
    parser.add_argument("--requests", type=int, default=60,
                        help="requests in the soak burst (default: 60)")
    parser.add_argument("--clients", type=int, default=50,
                        help="concurrent client threads (default: 50 — the "
                             "first wave alone overwhelms the queue, so the "
                             "soak proves typed shedding, not just success)")
    parser.add_argument("--capacity", type=int, default=16,
                        help="server admission capacity (default: 16)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="server-side pipeline workers (default: 2)")
    parser.add_argument("--chaos", default="worker_crash=%5,task_timeout=%7",
                        help="REPRO_CHAOS spec armed in the soak server")
    parser.add_argument("--artifacts", default=None,
                        help="directory to copy the journal, traces, and a "
                             "summary into (recovery scenario)")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    exit_code = 0
    if args.scenario in ("soak", "all"):
        exit_code |= run_soak(args)
    if args.scenario in ("recovery", "all"):
        exit_code |= run_recovery(args)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
