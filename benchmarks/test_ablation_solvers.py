"""Ablation A2 — the solver ladder.

How much tour quality does each level of solver machinery buy, at what
cost?  Construction heuristics (NN, greedy-edge), AP + Karp patching, one
3-Opt descent, and iterated 3-Opt (default and the appendix's 10-run
"paper" budget), measured on alignment DTSP instances against the
branch-and-bound optimum.
"""

import random
import time

from repro.experiments import esp_scale_instances, format_table
from repro.tsp import (
    branch_and_bound,
    greedy_edge_tour,
    iterated_three_opt,
    nearest_neighbor_tour,
    or_opt,
    patched_tour,
    three_opt,
    tour_cost,
)
from repro.tsp.solve import PAPER

LADDER = ["nn", "greedy-edge", "patch", "oropt", "3opt", "iterated", "paper"]


def solve(level, matrix, seed):
    rng = random.Random(seed)
    if level == "nn":
        return tour_cost(matrix, nearest_neighbor_tour(matrix, rng))
    if level == "greedy-edge":
        return tour_cost(matrix, greedy_edge_tour(matrix, rng))
    if level == "patch":
        return patched_tour(matrix)[1]
    if level == "oropt":
        return or_opt(matrix, list(range(matrix.shape[0])))[1]
    if level == "3opt":
        return three_opt(matrix, list(range(matrix.shape[0])))[1]
    if level == "iterated":
        return iterated_three_opt(matrix, seed=seed).cost
    return iterated_three_opt(
        matrix, starts=PAPER.starts, iterations=PAPER.iterations, seed=seed
    ).cost


def compute():
    instances = [
        (name, matrix)
        for name, matrix in esp_scale_instances(procedures=20, seed=11)
        if matrix.shape[0] >= 8
    ]
    optima = {}
    for name, matrix in instances:
        result = branch_and_bound(matrix, max_nodes=30_000)
        optima[name] = result.cost if result.optimal else None

    rows = []
    mean_gaps = {}
    for level in LADDER:
        gaps = []
        started = time.perf_counter()
        for index, (name, matrix) in enumerate(instances):
            cost = solve(level, matrix, seed=index)
            optimum = optima[name]
            if optimum is not None and optimum > 0:
                gaps.append((cost - optimum) / optimum)
            elif optimum is not None:
                gaps.append(0.0 if cost <= 1e-9 else 1.0)
        elapsed = time.perf_counter() - started
        mean_gap = sum(gaps) / len(gaps)
        mean_gaps[level] = mean_gap
        rows.append([
            level,
            f"{100 * mean_gap:.2f}%",
            f"{100 * max(gaps):.2f}%",
            sum(1 for g in gaps if g <= 1e-6),
            elapsed,
        ])
    return rows, mean_gaps, len(instances)


def test_ablation_solvers(benchmark, emit):
    rows, mean_gaps, n = benchmark.pedantic(
        compute, rounds=1, iterations=1, warmup_rounds=0
    )
    emit("ablation_solvers", format_table(
        ["solver", "mean gap to optimum", "max gap", "optimal found",
         "seconds"],
        rows,
        title=f"Ablation A2: solver ladder on {n} alignment instances",
    ))

    # Local search beats pure construction...
    assert mean_gaps["3opt"] <= min(mean_gaps["nn"], mean_gaps["greedy-edge"])
    # ...iteration beats a single descent...
    assert mean_gaps["iterated"] <= mean_gaps["3opt"] + 1e-9
    # ...and the paper budget is essentially optimal on these instances.
    assert mean_gaps["paper"] <= mean_gaps["iterated"] + 1e-9
    assert mean_gaps["paper"] < 0.01
