"""Ablation A7 — 1997 penalty model vs the 2020 Ext-TSP objective.

Every aligner is priced both ways on every case: the paper's control
penalty (lower is better, normalized to the original layout) and the
Ext-TSP score (higher is better, normalized to the all-fall-through
bound).  The head-to-head shape this asserts: each era's optimizer wins
its own objective — TSP alignment has the lowest mean penalty, the
Ext-TSP chain-merge aligner the highest mean score — while neither
family falls below the Held–Karp penalty floor or above the score bound.
"""

from repro.core import (
    align_program,
    evaluate_program,
    exttsp_max_score,
    exttsp_program_score,
    lower_bound_program,
)
from repro.experiments import format_table, profiled_run
from repro.machine import ALPHA_21164
from repro.workloads import all_cases, compile_benchmark

METHODS = ("greedy", "tsp", "exttsp", "chain-merge")


def compute():
    table = {}
    for abbr, dataset in all_cases():
        module = compile_benchmark(abbr)
        profile = profiled_run(abbr, dataset).profile
        program = module.program
        original = evaluate_program(
            program,
            align_program(program, profile, method="original"),
            profile,
            ALPHA_21164,
        ).total
        score_bound = sum(
            exttsp_max_score(proc.cfg, profile.procedures[proc.name])
            for proc in program
            if proc.name in profile.procedures
        )
        bound = lower_bound_program(program, profile, model=ALPHA_21164).total
        row = {"bound": bound / original if original else 1.0}
        for method in METHODS:
            layouts = align_program(program, profile, method=method)
            penalty = evaluate_program(
                program, layouts, profile, ALPHA_21164
            ).total
            score = exttsp_program_score(program, layouts, profile)
            assert penalty >= bound - 1e-6, (
                f"{abbr}.{dataset}/{method}: penalty below Held–Karp floor"
            )
            assert score <= score_bound + 1e-6, (
                f"{abbr}.{dataset}/{method}: score above fall-through bound"
            )
            row[method] = {
                "penalty": penalty / original if original else 1.0,
                "score": score / score_bound if score_bound else 0.0,
            }
        table[f"{abbr}.{dataset}"] = row
    return table


def test_ablation_exttsp(benchmark, emit):
    table = benchmark.pedantic(compute, rounds=1, iterations=1, warmup_rounds=0)
    headers = ["case"]
    for method in METHODS:
        headers += [f"{method} pen", f"{method} score"]
    headers.append("bound")
    rows = []
    for label, row in table.items():
        cells = [label]
        for method in METHODS:
            cells += [row[method]["penalty"], row[method]["score"]]
        cells.append(row["bound"])
        rows.append(cells)
    pen_means = {
        m: sum(r[m]["penalty"] for r in table.values()) / len(table)
        for m in METHODS
    }
    score_means = {
        m: sum(r[m]["score"] for r in table.values()) / len(table)
        for m in METHODS
    }
    mean_cells = ["MEAN"]
    for method in METHODS:
        mean_cells += [pen_means[method], score_means[method]]
    mean_cells.append(sum(r["bound"] for r in table.values()) / len(table))
    rows.append(mean_cells)
    emit("ablation_exttsp", format_table(
        headers, rows,
        title="Ablation A7: dual pricing — normalized penalty (lower "
              "better) and Ext-TSP score fraction (higher better)",
    ))

    # Each era's optimizer wins its own objective.
    assert pen_means["tsp"] <= min(pen_means.values()) + 1e-9
    assert score_means["exttsp"] >= max(score_means.values()) - 1e-9
    # Refinement is the only difference between the two new aligners, and
    # it never loses score on the profile it optimizes.
    assert score_means["exttsp"] >= score_means["chain-merge"] - 1e-9
    # The 2020 objective is a good proxy for the 1997 one: chasing
    # fall-throughs never does worse than the original layout.
    assert all(
        row[m]["penalty"] <= 1.0 + 1e-9
        for row in table.values() for m in METHODS
    )
    # Scores are genuine fractions of the all-fall-through bound.
    assert all(
        0.0 <= row[m]["score"] <= 1.0 + 1e-9
        for row in table.values() for m in METHODS
    )
