"""Table 2 — compilation and profiling times (worst data set per benchmark).

Paper: per-stage times for IR, instrumented build, greedy program, TSP
matrix, TSP solver, TSP program, and the profiling run; the TSP solver is
substantial but "not out of line with … the other parts of the compilation
process", and greedy programs are much cheaper to produce than TSP ones.

Ours: the same seven stages of our pipeline.  The assertions check the
qualitative cost structure, not absolute seconds.
"""

from repro.experiments import format_table, time_stages, worst_dataset
from repro.experiments.stages import STAGE_NAMES
from repro.workloads import SUITE


def test_table2(benchmark, emit):
    def run_all():
        rows = []
        for abbr in sorted(SUITE):
            dataset = worst_dataset(abbr)
            rows.append(time_stages(abbr, dataset).as_row())
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1, warmup_rounds=0)
    headers = ["benchmark", "dataset", *STAGE_NAMES, "degraded"]
    emit("table2_compile_times", format_table(
        headers, rows,
        title="Table 2: compilation and profiling times (seconds, worst "
              "data set per benchmark)",
    ))
    assert len(rows) == 6
    by_bench = {row[0]: dict(zip(STAGE_NAMES, row[2:])) for row in rows}
    for abbr, stages in by_bench.items():
        # Every real stage takes measurable (non-negative) time.
        assert all(value >= 0 for value in stages.values()), abbr
        # Greedy alignment is cheaper than the full TSP pipeline.
        tsp_total = (
            stages["tsp_matrix"] + stages["tsp_solver"] + stages["tsp_program"]
        )
        assert stages["greedy_program"] <= tsp_total + 0.05, abbr
    # The solver dominates the TSP-side cost for at least half the suite.
    solver_heavy = [
        abbr for abbr, stages in by_bench.items()
        if stages["tsp_solver"] >= stages["tsp_matrix"]
    ]
    assert len(solver_heavy) >= 3
