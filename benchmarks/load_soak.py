#!/usr/bin/env python
"""Zipf load soak for the sharded serving tier.

Drives a large request stream (default 100k) through an in-process
:class:`~repro.service.shard.ShardSupervisor` with Zipf-distributed
procedure popularity — the realistic shape where a hot head of payloads
dominates and a long tail stays cold — plus scheduled shard-kill /
shard-wedge chaos, and asserts the tier's serving contract:

1. **Every request gets a typed outcome** — a response, a typed shed
   (429-class), or a typed unavailability.  Nothing hangs, nothing
   raises untyped.
2. **Zero lost admissions** — after the soak drains, no shard journal
   holds an orphaned ``admitted`` record: everything admitted anywhere
   (including work stranded by a mid-soak shard kill) was completed or
   typed-failed.
3. **Accounting closes across all shards and all shard lives** —
   lifetime ``submitted == admitted + shed`` over live gates plus the
   retired ledger of killed lives.
4. **Hedging rescues stranded work** — with ``--kill-shard`` the kill
   strands in-flight requests on the dead shard; their callers hedge to
   the sibling and at least one hedge win is observed.

Metrics (latency p50/p95/max, shed/dedup/hedge rates, per-restart
recovery replay latency) land in ``BENCH_service.json`` under
``load_soak`` plus a history entry.

The soak submits in-process rather than over HTTP: the tier's routing,
admission, journaling, hedging, and restart machinery is identical, and
10^5 requests stay fast enough for CI.  Exit 0 when every assertion
holds, 1 otherwise.

Usage::

    PYTHONPATH=src python benchmarks/load_soak.py --requests 100000 \\
        --shards 4 --kill-shard
    PYTHONPATH=src python benchmarks/load_soak.py --requests 3000 \\
        --shards 2 --jobs 1 --kill-shard --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import math
import pathlib
import platform
import random
import statistics
import sys
import tempfile
import threading
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro.errors import (  # noqa: E402
    ServiceOverloadError,
    ServiceUnavailableError,
    ShardFailoverError,
)
from repro.service import (  # noqa: E402
    ServiceConfig,
    ShardSupervisor,
    ShardTierConfig,
    request_key,
    route_shard,
)

SOAK_SOURCE = """
fn main() {
  var i = 0;
  var acc = 0;
  var n = input_len();
  while (i < n) {
    var v = input(i);
    if (v % 2 == 0) { acc = acc + v; } else { acc = acc - 1; }
    if (v > 10) { acc = acc + 2; }
    i = i + 1;
  }
  output(acc);
  return acc;
}
"""


def make_payload(seed: int, deadline_ms: float | None = None) -> dict:
    payload = {
        "source": SOAK_SOURCE,
        "inputs": list(range(12)),
        "method": "greedy",
        "seed": seed,
    }
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    return payload


def zipf_sequence(
    count: int, population: int, s: float, rng: random.Random
) -> list[int]:
    """``count`` draws from a Zipf(s) distribution over ``population``
    ranks via inverse CDF — deterministic for a seeded ``rng``."""
    weights = [1.0 / (rank**s) for rank in range(1, population + 1)]
    total = sum(weights)
    cumulative, acc = [], 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    draws = []
    for _ in range(count):
        u = rng.random()
        lo, hi = 0, population - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        draws.append(lo)
    return draws


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile (no interpolation): the smallest observed
    value such that at least ``fraction`` of the sample is <= it —
    ``ordered[ceil(fraction * n) - 1]``, clamped into the sample.

    Degenerate inputs have a defined, stable answer so a fully-shed soak
    still produces a valid BENCH_service.json: an empty sample reports
    0.0 (there were no latencies, not an index error) and a singleton
    reports its only element for every fraction.  Nearest-rank — rather
    than linear interpolation — always returns a latency that actually
    occurred, and two runs over identical samples report identical
    p50/p95 regardless of sample size parity.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered))
    index = min(len(ordered) - 1, max(0, rank - 1))
    return ordered[index]


class SoakState:
    """Shared, locked accounting for the client worker threads."""

    def __init__(self):
        self.lock = threading.Lock()
        self.latencies_ms: list[float] = []
        self.outcomes: dict[str, int] = {}
        self.submitted = 0
        self.kill_trigger = threading.Event()

    def record(self, outcome: str, elapsed_ms: float | None = None) -> None:
        with self.lock:
            self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
            if elapsed_ms is not None:
                self.latencies_ms.append(elapsed_ms)

    def bump_submitted(self, threshold: int) -> None:
        with self.lock:
            self.submitted += 1
            if self.submitted >= threshold:
                self.kill_trigger.set()


def run_one(sup: ShardSupervisor, payload: dict, state: SoakState) -> None:
    started = time.monotonic()
    try:
        request = sup.submit(payload)
        response = request.result(timeout=180.0)
    except ServiceOverloadError:
        state.record("shed")
        return
    except (ServiceUnavailableError, ShardFailoverError):
        state.record("unavailable")
        return
    except TimeoutError:
        state.record("timeout")
        return
    elapsed_ms = (time.monotonic() - started) * 1000.0
    status = response.get("status") if isinstance(response, dict) else None
    state.record(status or "malformed", elapsed_ms)


def client_worker(
    sup: ShardSupervisor,
    sequence: list[int],
    deadline_every: int,
    kill_threshold: int,
    state: SoakState,
) -> None:
    for position, rank in enumerate(sequence):
        deadline = 50.0 if deadline_every and position % deadline_every == 0 \
            else None
        run_one(sup, make_payload(rank, deadline), state)
        state.bump_submitted(kill_threshold)


def chaos_kill(
    sup: ShardSupervisor, victim: int, state: SoakState, fresh_seeds: list[int]
) -> dict:
    """Wedge then kill one shard mid-soak, with fresh (never-seen) keys
    stranded on it so their callers must hedge to the sibling.

    The wedge guarantees the fresh admissions sit unprocessed when the
    kill lands; the kill strands them; hedging answers them from the
    sibling while the probe loop restarts the victim and journal
    recovery re-plays the stranded admissions.
    """
    state.kill_trigger.wait(timeout=600.0)
    # Stop the victim's worker at its next item boundary, with a wedge
    # long enough that nothing drains before the kill.
    sup.wedge_shard(victim, seconds=30.0)
    time.sleep(0.05)
    stranded = []
    for seed in fresh_seeds:
        try:
            stranded.append(sup.submit(make_payload(seed)))
        except (ServiceOverloadError, ServiceUnavailableError,
                ShardFailoverError):
            pass
    epoch_before = sup._workers[victim].epoch
    sup.kill_shard(victim)
    waiters = []
    for request in stranded:
        waiter = threading.Thread(target=run_one_handle,
                                  args=(request, state))
        waiter.start()
        waiters.append(waiter)
    for waiter in waiters:
        waiter.join(timeout=240.0)
    deadline = time.monotonic() + 120.0
    while (sup._workers[victim].epoch == epoch_before
           and time.monotonic() < deadline):
        time.sleep(0.01)
    return {
        "victim": victim,
        "stranded": len(stranded),
        "restarted": sup._workers[victim].epoch > epoch_before,
    }


def run_one_handle(request, state: SoakState) -> None:
    started = time.monotonic()
    try:
        response = request.result(timeout=180.0)
    except Exception:  # noqa: BLE001 — typed either way, counted below
        state.record("stranded_failed")
        return
    elapsed_ms = (time.monotonic() - started) * 1000.0
    status = response.get("status") if isinstance(response, dict) else None
    state.record(status or "malformed", elapsed_ms)


def fresh_seeds_for_shard(
    victim: int, shards: int, start: int, count: int
) -> list[int]:
    """Seeds outside the Zipf population whose keys route to ``victim``."""
    seeds = []
    seed = start
    while len(seeds) < count and seed < start + 100_000:
        if route_shard(request_key(make_payload(seed)), shards) == victim:
            seeds.append(seed)
        seed += 1
    return seeds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=100_000)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--population", type=int, default=48,
                        help="distinct payloads behind the Zipf draw")
    parser.add_argument("--zipf-s", type=float, default=1.2,
                        help="Zipf exponent (higher = hotter head)")
    parser.add_argument("--capacity", type=int, default=32,
                        help="per-shard admission capacity")
    parser.add_argument("--jobs", type=int, default=1,
                        help="align worker processes per shard (jobs > 1 "
                             "serializes the align stage across shards)")
    parser.add_argument("--hedge-ms", type=float, default=75.0,
                        help="hedge threshold (ms)")
    parser.add_argument("--deadline-every", type=int, default=20,
                        help="every Nth request per client carries a 50ms "
                             "deadline (0 = never) to exercise "
                             "deadline-aware shedding")
    parser.add_argument("--kill-shard", action="store_true",
                        help="wedge+kill one shard mid-soak and require "
                             "a hedge win plus full recovery")
    parser.add_argument("--kill-at", type=float, default=0.4,
                        help="kill once this fraction of requests is in")
    parser.add_argument("--journal-compact-bytes", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_service.json"))
    parser.add_argument("--trace", default=None,
                        help="write the observability trace here")
    args = parser.parse_args(argv)
    if args.shards < 2 and args.kill_shard:
        parser.error("--kill-shard needs --shards >= 2 (hedging and "
                     "failover need a sibling)")

    if args.trace:
        obs.start_trace(args.trace)
    journal_dir = tempfile.mkdtemp(prefix="repro-load-soak-")
    sup = ShardSupervisor(ShardTierConfig(
        shards=args.shards,
        journal_dir=journal_dir,
        journal_compact_bytes=args.journal_compact_bytes,
        hedge_after_ms=args.hedge_ms,
        # Realistic detection latency: the probe notices a dead shard in
        # ~1s, so hedging (75ms) is what actually rescues stranded
        # callers; the restart + journal replay heal the shard behind it.
        probe_interval_s=1.0,
        wedge_timeout_s=120.0,  # chaos kills explicitly; no surprise restarts
        service=ServiceConfig(capacity=args.capacity, jobs=args.jobs),
    )).start()

    rng = random.Random(args.seed)
    sequence = zipf_sequence(args.requests, args.population, args.zipf_s, rng)
    per_client = [sequence[i::args.clients] for i in range(args.clients)]
    state = SoakState()
    kill_threshold = max(1, int(args.requests * args.kill_at))
    if not args.kill_shard:
        kill_threshold = args.requests + 1  # never trips

    chaos_result: dict = {}
    chaos_thread = None
    if args.kill_shard:
        victim = 0
        fresh = fresh_seeds_for_shard(
            victim, args.shards, start=args.population + 1000, count=6
        )

        def chaos():
            chaos_result.update(chaos_kill(sup, victim, state, fresh))

        chaos_thread = threading.Thread(target=chaos)
        chaos_thread.start()

    started = time.monotonic()
    clients = [
        threading.Thread(
            target=client_worker,
            args=(sup, chunk, args.deadline_every, kill_threshold, state),
        )
        for chunk in per_client
    ]
    for client in clients:
        client.start()
    for client in clients:
        client.join()
    if chaos_thread is not None:
        state.kill_trigger.set()  # in case the soak was too small to trip
        chaos_thread.join(timeout=600.0)
    soak_seconds = time.monotonic() - started

    # Let a mid-soak restart finish its journal replay before draining.
    # A drain that lands mid-replay *cleanly abandons* un-replayed
    # orphans for the next start (that contract has its own tests); the
    # soak asserts the stronger end state — a settled tier owes a
    # terminal journal record for every admission it ever made.
    settle_deadline = time.monotonic() + 300.0
    while sup.recovering and time.monotonic() < settle_deadline:
        time.sleep(0.05)

    snapshot_before_drain = sup.snapshot()
    drained = sup.drain(timeout=300.0)
    snapshot = sup.snapshot()
    totals = snapshot["totals"]
    tier = snapshot["tier"]

    # Per-restart journal recovery latency, from each restarted life.
    replay_ms = [
        shard["service"]["recovery"]["replay_ms"]
        for shard in snapshot["shards"]
        if shard["service"] and shard["service"].get("recovery")
    ]

    failures: list[str] = []

    def check(ok: bool, message: str) -> None:
        print(("PASS " if ok else "FAIL ") + message)
        if not ok:
            failures.append(message)

    total_outcomes = sum(state.outcomes.values())
    expected = args.requests + chaos_result.get("stranded", 0)
    check(total_outcomes == expected,
          f"every request has a typed outcome "
          f"({total_outcomes}/{expected}: {state.outcomes})")
    untyped = {
        k: v for k, v in state.outcomes.items()
        if k not in ("ok", "shed", "unavailable", "quarantined", "degraded")
    }
    check(not untyped, f"no untyped/hung outcomes (got {untyped or 'none'})")
    check(drained, "tier drained cleanly")
    check(totals["submitted"] == totals["admitted"] + totals["shed"],
          f"accounting closed across shards and lives "
          f"(submitted={totals['submitted']} admitted={totals['admitted']} "
          f"shed={totals['shed']})")

    orphan_counts = {}
    for index in range(args.shards):
        path = pathlib.Path(journal_dir) / f"shard-{index}.jsonl"
        if path.exists():
            from repro.service.journal import RequestJournal

            orphan_counts[index] = len(RequestJournal(path).load().orphans)
    check(sum(orphan_counts.values()) == 0,
          f"zero lost admissions: no journal orphans after drain "
          f"({orphan_counts})")

    if args.kill_shard:
        check(chaos_result.get("restarted", False),
              f"killed shard was restarted (epoch "
              f"{sup._workers[chaos_result.get('victim', 0)].epoch})")
        check(tier["hedge_wins"] >= 1,
              f"at least one hedge win observed "
              f"(hedged={tier['hedged']} wins={tier['hedge_wins']})")
        check(len(replay_ms) >= 1,
              f"recovery replay ran on the restarted shard ({replay_ms})")

    latencies = state.latencies_ms
    report = {
        "requests": args.requests,
        "shards": args.shards,
        "clients": args.clients,
        "jobs": args.jobs,
        "population": args.population,
        "zipf_s": args.zipf_s,
        "capacity": args.capacity,
        "hedge_after_ms": args.hedge_ms,
        "kill_shard": bool(args.kill_shard),
        "soak_seconds": round(soak_seconds, 3),
        "throughput_rps": round(args.requests / max(soak_seconds, 1e-9), 1),
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50), 3),
            "p95": round(percentile(latencies, 0.95), 3),
            "max": round(max(latencies), 3) if latencies else 0.0,
            "mean": round(statistics.fmean(latencies), 3)
            if latencies else 0.0,
            "count": len(latencies),
        },
        "outcomes": dict(sorted(state.outcomes.items())),
        "totals": totals,
        "shed_rate": round(totals["shed"] / max(1, totals["submitted"]), 6),
        "deadline_shed": totals["deadline_shed"],
        "dedup": totals["deduped"],
        "hedged": tier["hedged"],
        "hedge_wins": tier["hedge_wins"],
        "hedge_rate": round(
            tier["hedged"] / max(1, tier["routed"]), 6
        ),
        "deaths": tier["deaths"],
        "wedges": tier["wedges"],
        "restarts": tier["restarts"],
        "recovery_replay_ms": replay_ms,
        "chaos": chaos_result or None,
        "in_flight_at_drain": snapshot_before_drain["totals"]["admitted"]
        - snapshot_before_drain["totals"]["completed"]
        - snapshot_before_drain["totals"]["failed"]
        - snapshot_before_drain["totals"]["quarantined"],
        "drained": drained,
        "passed": not failures,
    }

    out_path = pathlib.Path(args.out)
    try:
        bench = json.loads(out_path.read_text())
    except (OSError, ValueError):
        bench = {}
    bench.setdefault("python", platform.python_version())
    bench.setdefault("platform", platform.platform())
    bench["load_soak"] = report
    bench.setdefault("history", []).append({
        "when": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "scenario": "load_soak",
        "requests": args.requests,
        "shards": args.shards,
        "latency_p50_ms": report["latency_ms"]["p50"],
        "latency_p95_ms": report["latency_ms"]["p95"],
        "shed_rate": report["shed_rate"],
        "hedge_rate": report["hedge_rate"],
        "hedge_wins": report["hedge_wins"],
        "replay_ms": replay_ms[0] if replay_ms else None,
    })
    out_path.write_text(json.dumps(bench, indent=1) + "\n")
    print(f"wrote {out_path}")

    if failures:
        print(f"\n{len(failures)} assertion(s) failed", file=sys.stderr)
        return 1
    print(f"\nload soak passed: {args.requests} requests over "
          f"{args.shards} shard(s) in {soak_seconds:.1f}s "
          f"(p50 {report['latency_ms']['p50']}ms, "
          f"p95 {report['latency_ms']['p95']}ms, "
          f"shed rate {report['shed_rate']}, "
          f"hedge wins {report['hedge_wins']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
