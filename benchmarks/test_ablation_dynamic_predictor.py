"""Ablation A4 — dynamic prediction hardware (the paper's §6 future work).

The alignment cost model assumes static prediction.  Real machines (and
the 21164 itself) have dynamic predictors; the paper proposes trace-driven
simulation of that hardware as a refinement.  This bench replays recorded
branch transitions through a 2-bit bimodal predictor + BTB under the
original and TSP layouts: alignment's mispredict-side benefit shrinks
(the hardware already predicts well) but the layout benefits that dynamic
hardware cannot remove — kept/inserted jumps and fall-through placement —
survive, so aligned layouts still win.
"""

from repro.core import align_program, train_predictors
from repro.core.materialize import materialize_program
from repro.experiments import format_table
from repro.lang import execute
from repro.machine import ALPHA_21164
from repro.machine.dynamic import simulate_dynamic_penalties
from repro.workloads import SUITE, compile_benchmark

CASES = (("com", "in"), ("eqn", "ip"), ("xli", "q7"))


def compute():
    rows = []
    wins = 0
    for abbr, dataset in CASES:
        module = compile_benchmark(abbr)
        result = execute(
            module,
            SUITE[abbr].inputs(dataset),
            keep_events=False,
            keep_transitions=True,
        )
        log = result.trace.transition_log
        from repro.profiles import ProgramProfile
        profile = ProgramProfile()
        for proc, edges in result.trace.edge_counts.items():
            edge_profile = profile.profile(proc)
            for key, count in edges.items():
                edge_profile.add(*key, count)
        program = module.program
        predictors = train_predictors(program, profile)
        outcome = {}
        for method in ("original", "tsp"):
            layouts = align_program(program, profile, method=method)
            physical = materialize_program(program, layouts, predictors)
            dynamic = simulate_dynamic_penalties(
                program, layouts, physical, log, ALPHA_21164
            )
            outcome[method] = dynamic
            rows.append([
                f"{abbr}.{dataset}", method, dynamic.total,
                dynamic.mispredict_cycles, dynamic.misfetch_cycles,
                dynamic.jump_cycles,
                f"{100 * dynamic.mispredict_rate:.1f}%",
            ])
        if outcome["tsp"].total <= outcome["original"].total:
            wins += 1
    return rows, wins


def test_ablation_dynamic_predictor(benchmark, emit):
    rows, wins = benchmark.pedantic(
        compute, rounds=1, iterations=1, warmup_rounds=0
    )
    emit("ablation_dynamic_predictor", format_table(
        ["case", "layout", "penalty", "mispredict", "misfetch", "jump",
         "mispredict rate"],
        rows,
        title="Ablation A4: penalties under dynamic prediction "
              "(bimodal + BTB)",
    ))
    # Alignment still pays off under dynamic prediction hardware on every
    # case: the jump/fall-through benefits are layout-only.
    assert wins == len(CASES)
    # Dynamic prediction keeps conditional mispredict rates modest.
    rates = [float(r[6].rstrip("%")) for r in rows]
    assert max(rates) < 35.0
