#!/usr/bin/env python
"""Benchmark the staged alignment pipeline and write ``BENCH_pipeline.json``.

Two measurements:

* **tier1** — wall-clock of the repository's tier-1 test suite
  (``python -m pytest -x -q``), the guardrail every PR must keep green.
* **figure2** — a fixed sweep: every benchmark case of the paper's Figure 2
  configuration (train = test, the runner's default method set — both
  greedy baselines, TSP, and the Ext-TSP chain-merge pair), run once per
  requested worker count with cold alignment caches.  Reports wall-clock,
  aligned procedures per second, the artifact cache's per-kind hit
  rates (the ``instance`` rate is the cost-matrix sharing the pipeline
  exists to provide), a ``bound_reseed`` check — the Held–Karp bounds
  re-derived under a different seed must be served entirely from the
  cache, since the upper-bound hint is not part of a bound's identity —
  and a snapshot of the :mod:`repro.obs` counters —
  solver effort (``tsp.runs``/``tsp.kicks``/``tsp.improving_moves``) and
  cache/store/executor activity — so perf deltas can be attributed
  (e.g. "slower because 2× the kicks" vs "slower per kick").

Profiling runs (VM execution) are warmed once before timing, so the
figure2 numbers measure the alignment pipeline, not the interpreter.

The previous report (if any) is loaded defensively — a missing, truncated,
or hand-mangled ``BENCH_pipeline.json`` starts a fresh history instead of
crashing — and each run appends a compact entry to ``history`` so perf and
robustness regressions (retries, quarantines) are visible across runs.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py              # jobs 1 and 4
    PYTHONPATH=src python benchmarks/run_bench.py --jobs 1 2 --skip-tier1
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_pipeline.json"
DEFAULT_SERVICE_OUT = REPO_ROOT / "BENCH_service.json"

SERVICE_BENCH_SOURCE = """
fn main() {
  var i = 0;
  var acc = 0;
  var n = input_len();
  while (i < n) {
    var v = input(i);
    if (v % 2 == 0) { acc = acc + v; } else { acc = acc - 1; }
    if (v > 10) { acc = acc + 2; }
    i = i + 1;
  }
  output(acc);
  return acc;
}
"""


def bench_tier1() -> dict:
    """Time the tier-1 suite in a fresh interpreter."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    started = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q", "tests"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    elapsed = time.perf_counter() - started
    tail = proc.stdout.strip().splitlines()[-1] if proc.stdout.strip() else ""
    return {
        "wall_seconds": round(elapsed, 3),
        "exit_code": proc.returncode,
        "summary": tail,
    }


def bench_solver_microbench(
    n: int = 100, kicks: int = 60, seed: int = 7
) -> dict:
    """Raw kernel throughput on a seeded instance, per mode.

    Times the descend/kick loop directly (no pipeline, no caches):
    ``moves_per_second`` is accepted improving moves (3-opt + or-opt) and
    ``descents_per_second`` counts drained wake queues — the two rates the
    figure2 wall-clock decomposes into, so a pipeline regression can be
    attributed to the solver or to everything around it.
    """
    import random

    import numpy as np

    from repro.tsp.kernel import KernelStats, SolverKernel

    out: dict = {"n": n, "kicks": kicks, "seed": seed, "modes": {}}
    for mode in ("guarded", "turbo"):
        rng = np.random.default_rng(seed)
        matrix = rng.uniform(1.0, 100.0, size=(n, n))
        np.fill_diagonal(matrix, 0.0)
        or_opt = mode == "turbo"
        kick_rng = random.Random(seed)
        kernel = SolverKernel(matrix, neighbors=12)
        state = kernel.state_from(list(range(n)))
        stats = KernelStats()
        started = time.perf_counter()
        kernel.descend(state, stats=stats, or_opt=or_opt)
        for _ in range(kicks):
            kernel.kick(state, kick_rng)
            kernel.descend(state, stats=stats, or_opt=or_opt)
        elapsed = time.perf_counter() - started
        descents = kicks + 1
        moves = stats.moves + stats.or_opt_moves
        out["modes"][mode] = {
            "wall_seconds": round(elapsed, 4),
            "moves": moves,
            "or_opt_moves": stats.or_opt_moves,
            "scans": stats.scans,
            "final_cost": round(state.cost, 3),
            "moves_per_second": round(moves / elapsed, 1),
            "descents_per_second": round(descents / elapsed, 1),
        }
    return out


def bench_figure2(jobs: int) -> dict:
    """Time the fixed Figure-2 sweep at one worker count, caches cold."""
    return bench_figure2_sweep([jobs])[0]


def bench_figure2_sweep(jobs_list: list[int], passes: int = 3) -> list[dict]:
    """Time the fixed Figure-2 sweep at each worker count, caches cold.

    One untimed sweep runs first per worker count: it warms the
    interpreter's code paths and (for ``jobs > 1``) the worker pool, so
    the timed passes measure steady-state pipeline throughput — the same
    reason profiling runs are warmed before any timing.  Each worker
    count is then timed ``passes`` times (caches reset before each pass,
    so the alignment work is fully recomputed every time) and the
    fastest pass is reported: single-pass wall-clock on a shared box
    jitters by more than the worker-count deltas being tracked.  The
    timed passes are *interleaved* round-robin across worker counts —
    running all of jobs=1 before any of jobs=4 would let slow drift over
    the process lifetime (allocator growth, box contention) bias
    whichever count runs last.
    """
    from repro import obs
    from repro.experiments.runner import (
        DEFAULT_METHODS,
        case_lower_bound,
        run_case,
    )
    from repro.pipeline.artifacts import artifact_cache, reset_artifact_cache
    from repro.pipeline.executor import shutdown_pool
    from repro.workloads.suite import all_cases, compile_benchmark

    for jobs in jobs_list:  # untimed warmup sweep per worker count
        for benchmark, dataset in all_cases():
            run_case(benchmark, dataset, jobs=jobs)

    best: dict[int, tuple[float, int, int, int]] = {}
    finals: dict[int, dict] = {}
    for round_no in range(passes):
        for jobs in jobs_list:
            reset_artifact_cache()
            case_lower_bound.cache_clear()
            obs.tracer().reset_counters()  # scope the snapshot to this pass
            pass_procedures = pass_retried = pass_quarantined = 0
            started = time.perf_counter()
            for benchmark, dataset in all_cases():
                case = run_case(benchmark, dataset, jobs=jobs)
                pass_retried += case.retried
                pass_quarantined += case.quarantined
                pass_procedures += len(
                    list(compile_benchmark(benchmark).program)
                ) * len(DEFAULT_METHODS)
            pass_elapsed = time.perf_counter() - started
            if jobs not in best or pass_elapsed < best[jobs][0]:
                best[jobs] = (
                    pass_elapsed, pass_procedures,
                    pass_retried, pass_quarantined,
                )
            if round_no != passes - 1:
                continue

            # Bound-keying check (untimed, after this worker count's
            # final pass while its cache is still populated): re-derive
            # every case's Held–Karp bound under a different base seed.
            # The re-run's TSP tours — the upper-bound *hints* — differ,
            # but the bound artifact's identity (cfg, profile, model,
            # iterations, budget) does not, so the cache must serve
            # every request.  The hint used to be part of the key, which
            # made repeated runs miss 100% of the time.
            before = artifact_cache().stats_by_kind().get("bound")
            before_hits = before.hits if before else 0
            before_misses = before.misses if before else 0
            case_lower_bound.cache_clear()
            for benchmark, dataset in all_cases():
                case_lower_bound(benchmark, dataset, seed=1, jobs=jobs)
            after = artifact_cache().stats_by_kind()["bound"]
            reseed_hits = after.hits - before_hits
            reseed_misses = after.misses - before_misses
            shutdown_pool()

            finals[jobs] = {
                "cache": {
                    kind: {
                        "hits": s.hits,
                        "misses": s.misses,
                        "hit_rate": round(s.hit_rate, 4),
                    }
                    for kind, s in sorted(
                        artifact_cache().stats_by_kind().items()
                    )
                },
                "bound_reseed": {
                    "hits": reseed_hits,
                    "misses": reseed_misses,
                    "hit_rate": round(
                        reseed_hits / max(1, reseed_hits + reseed_misses), 4
                    ),
                },
                # Stable counters are worker-count invariant;
                # per-process ones (cache./store.) are honest
                # observations of this sweep only.
                "counters": obs.counters(),
                "stable_counters": sorted(obs.counters(stable_only=True)),
            }

    entries = []
    for jobs in jobs_list:
        elapsed, procedures, retried, quarantined = best[jobs]
        entries.append({
            "jobs": jobs,
            "wall_seconds": round(elapsed, 3),
            "procedures_aligned": procedures,
            "procedures_per_second": round(procedures / elapsed, 2),
            "retried": retried,
            "quarantined": quarantined,
            **finals[jobs],
        })
    return entries


def percentile(latencies: list[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty series."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return round(ordered[rank], 3)


def bench_service(requests: int, clients: int, capacity: int) -> dict:
    """Latency/shed/fallback profile of the in-process alignment service.

    Three phases, journaled throughout:

    * **burst** — ``requests`` submissions from ``clients`` concurrent
      threads against a ``capacity``-bounded queue: p50/p95 of the
      worker's per-request latency, plus how many the gate shed.
    * **breaker** — a crash-everything fault plan drives the tsp breaker
      open, counting how many requests the greedy fallback absorbed
      before the service was drained.  Breaker payloads use a +10_000
      seed offset so the journal's idempotent coalescing cannot serve
      them from the burst phase's cache (a deduped request never reaches
      the solver, so the breaker would never trip).
    * **recovery replay** — a second service instance replays the same
      journal: ``replay_ms`` is the cost of re-admitting every completed
      response, including its Held–Karp re-verification.
    """
    import tempfile
    import threading
    import time as time_mod

    from repro.errors import ServiceOverloadError
    from repro.faults import inject_faults
    from repro.service import AlignmentService, ServiceConfig

    def payload(i: int) -> dict:
        return {
            "source": SERVICE_BENCH_SOURCE,
            "inputs": list(range(12 + i % 5)),
            "method": "tsp",
            "seed": i,
        }

    journal_path = os.path.join(
        tempfile.mkdtemp(prefix="repro-bench-journal-"), "journal.jsonl"
    )
    service = AlignmentService(
        ServiceConfig(capacity=capacity, journal_path=journal_path)
    ).start()
    started = time.perf_counter()
    pending, shed_lock = iter(range(requests)), threading.Lock()

    def client_loop() -> None:
        while True:
            with shed_lock:
                try:
                    i = next(pending)
                except StopIteration:
                    return
            try:
                handle = service.submit(payload(i))
            except ServiceOverloadError:
                continue  # the gate's own counter records the shed
            handle.result(600)

    threads = [threading.Thread(target=client_loop) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    burst_seconds = time.perf_counter() - started

    # Breaker phase: every align pass reports crashes, so the breaker
    # opens after `threshold` requests and the rest ride the fallback.
    # Seeds are offset so these are fresh keys, never deduped replays.
    with inject_faults(worker_crash=True):
        for i in range(service.config.breaker_threshold + 4):
            service.align(payload(10_000 + i), timeout=600)
    drained = service.drain(timeout=120)

    latencies = list(service.stats.latencies_ms)
    snapshot = service.snapshot()

    # Recovery replay: restart on the journal the drained life wrote and
    # time the replay (re-verification included, no re-solving).
    replayer = AlignmentService(
        ServiceConfig(capacity=capacity, journal_path=journal_path)
    ).start()
    replay_deadline = time_mod.monotonic() + 300
    while replayer.recovering and time_mod.monotonic() < replay_deadline:
        time_mod.sleep(0.01)
    recovery = replayer.snapshot()["recovery"] or {}
    replayer.drain(timeout=120)

    return {
        "requests": requests,
        "clients": clients,
        "capacity": capacity,
        "burst_seconds": round(burst_seconds, 3),
        "latency_ms": {
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "max": round(max(latencies), 3) if latencies else 0.0,
            "count": len(latencies),
        },
        "admitted": snapshot["gate"]["admitted"],
        "shed": snapshot["gate"]["shed"],
        "completed": snapshot["completed"],
        "quarantined": snapshot["quarantined"],
        "deduped": snapshot["deduped"],
        "breaker_fallbacks": snapshot["breaker_fallbacks"],
        "breakers": snapshot["breakers"],
        "journal": snapshot["journal"],
        "recovery_replay": {
            "replay_ms": recovery.get("replay_ms"),
            "replayed_completed": recovery.get("replayed_completed"),
            "reverify_failed": recovery.get("reverify_failed"),
            "reenqueued": recovery.get("reenqueued"),
        },
        "drained": drained,
    }


def load_previous_report(path: pathlib.Path) -> dict | None:
    """Load the last report defensively: a missing file, unreadable bytes,
    malformed JSON, or a non-object top level all mean "no history" —
    benchmarking must never fail because the previous run was interrupted
    mid-write or the file was hand-edited."""
    try:
        raw = path.read_text()
    except OSError:
        return None
    try:
        previous = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
        return None
    return previous if isinstance(previous, dict) else None


def history_entry(report: dict) -> dict:
    """Compact per-run summary kept across reports."""
    figure2 = report.get("figure2") or []
    return {
        "when": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "wall_seconds": {
            str(entry.get("jobs")): entry.get("wall_seconds")
            for entry in figure2
        },
        # The headline rate the solver-kernel work moves: alignments
        # delivered per second of sweep wall-clock, per worker count.
        "procedures_per_second": {
            str(entry.get("jobs")): entry.get("procedures_per_second")
            for entry in figure2
        },
        "retried": sum(int(entry.get("retried", 0)) for entry in figure2),
        "quarantined": sum(
            int(entry.get("quarantined", 0)) for entry in figure2
        ),
        # Solver effort across the sweep: a wall-clock regression with
        # flat kicks is a per-kick slowdown; with more kicks, extra work.
        "tsp_kicks": sum(
            int((entry.get("counters") or {}).get("tsp.kicks", 0))
            for entry in figure2
        ),
        "tier1_seconds": (report.get("tier1") or {}).get("wall_seconds"),
        "solver_moves_per_second": {
            mode: entry.get("moves_per_second")
            for mode, entry in (
                (report.get("solver") or {}).get("modes") or {}
            ).items()
        },
    }


def warm_profiles() -> None:
    from repro.experiments.runner import profiled_run
    from repro.workloads.suite import all_cases

    for benchmark, dataset in all_cases():
        profiled_run(benchmark, dataset)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, nargs="+", default=[1, 4],
                        help="worker counts to sweep (default: 1 4)")
    parser.add_argument("--skip-tier1", action="store_true",
                        help="skip timing the tier-1 test suite")
    parser.add_argument("--skip-service", action="store_true",
                        help="skip the alignment service sweep")
    parser.add_argument("--service-requests", type=int, default=40,
                        help="requests in the service burst (default: 40)")
    parser.add_argument("--service-clients", type=int, default=12,
                        help="concurrent service clients (default: 12)")
    parser.add_argument("--service-capacity", type=int, default=8,
                        help="service admission capacity (default: 8)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output path (default: {DEFAULT_OUT})")
    parser.add_argument("--service-out", type=pathlib.Path,
                        default=DEFAULT_SERVICE_OUT,
                        help="service sweep output path "
                             f"(default: {DEFAULT_SERVICE_OUT})")
    args = parser.parse_args(argv)

    previous = load_previous_report(args.out)
    history = previous.get("history") if previous else None
    if not isinstance(history, list):
        history = []

    report: dict = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
    }

    print("solver microbench...")
    report["solver"] = bench_solver_microbench()
    for mode, entry in report["solver"]["modes"].items():
        print(
            f"  {mode}: {entry['moves_per_second']} moves/s, "
            f"{entry['descents_per_second']} descents/s "
            f"({entry['moves']} moves in {entry['wall_seconds']}s)"
        )

    print("warming profiling runs (excluded from timings)...")
    warm_profiles()

    jobs_label = ", ".join(str(j) for j in args.jobs)
    print(f"figure-2 sweep, jobs={jobs_label} (passes interleaved)...")
    report["figure2"] = bench_figure2_sweep(list(args.jobs))
    for entry in report["figure2"]:
        print(
            f"  jobs={entry['jobs']}: {entry['wall_seconds']}s, "
            f"{entry['procedures_per_second']} procs/s, instance hit rate "
            f"{entry['cache'].get('instance', {}).get('hit_rate', 0.0)}, "
            f"bound reseed hit rate "
            f"{entry['bound_reseed']['hit_rate']}, "
            f"{entry['retried']} retried, {entry['quarantined']} quarantined"
        )

    if not args.skip_service:
        print(
            f"service sweep: {args.service_requests} requests / "
            f"{args.service_clients} clients / capacity "
            f"{args.service_capacity}..."
        )
        entry = bench_service(
            args.service_requests, args.service_clients,
            args.service_capacity,
        )
        previous_service = load_previous_report(args.service_out)
        service_history = (
            previous_service.get("history") if previous_service else None
        )
        if not isinstance(service_history, list):
            service_history = []
        service_history.append({
            "when": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "latency_p50_ms": entry["latency_ms"]["p50"],
            "latency_p95_ms": entry["latency_ms"]["p95"],
            "shed": entry["shed"],
            "breaker_fallbacks": entry["breaker_fallbacks"],
            "replay_ms": entry["recovery_replay"]["replay_ms"],
        })
        args.service_out.write_text(json.dumps({
            "python": report["python"],
            "platform": report["platform"],
            "cpus": report["cpus"],
            "service": entry,
            "history": service_history[-20:],
        }, indent=2) + "\n")
        print(
            f"  p50 {entry['latency_ms']['p50']}ms, "
            f"p95 {entry['latency_ms']['p95']}ms, "
            f"{entry['shed']} shed, "
            f"{entry['breaker_fallbacks']} breaker fallbacks, "
            f"replay {entry['recovery_replay']['replay_ms']}ms"
        )
        print(f"wrote {args.service_out}")

    if not args.skip_tier1:
        print("tier-1 suite...")
        report["tier1"] = bench_tier1()
        print(
            f"  {report['tier1']['wall_seconds']}s "
            f"({report['tier1']['summary']})"
        )

    report["history"] = (history + [history_entry(report)])[-20:]
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
