"""Table 1 — benchmark and data-set descriptions.

Paper: six SPEC92-derived benchmarks, two data sets each; branch sites
touched range from dozens (compress) to ~1,500 (espresso); executed branch
instructions range from 0.1M (xli.ne) to hundreds of millions.

Ours: the same six benchmark characters at laptop scale — branch counts in
the 10^4–10^6 range (DESIGN.md documents the scale-down), with xli.ne the
by-far-shortest run, as in the paper.
"""

from repro.experiments import format_table, profiled_run, table1_rows
from repro.workloads import all_cases


def test_table1(benchmark, emit):
    headers, rows = benchmark.pedantic(
        table1_rows, rounds=1, iterations=1, warmup_rounds=0
    )
    emit("table1_benchmarks", format_table(
        headers, rows, title="Table 1: benchmarks and data sets"
    ))
    assert len(rows) == 12
    by_case = {f"{r[1]}.{r[3]}": r for r in rows}

    # Every case touches branch sites and executes branches.
    for row in rows:
        assert row[4] > 0
        assert row[5] > row[4]

    # xli.ne is the shortest-running data set by far (paper: 0.1M vs others).
    executed = {label: row[5] for label, row in by_case.items()}
    assert executed["xli.ne"] == min(executed.values())
    assert executed["xli.q7"] > 50 * executed["xli.ne"]

    # su2cor touches few branch sites relative to the branchy benchmarks.
    assert by_case["su2.re"][4] < by_case["esp.ti"][4]
