"""Ablation A5 — interprocedural/cache-side placement extensions.

The paper's conclusion reserves "the interprocedural code placement
problem" for future work and attributes its unexplained run-time wins to
cache effects.  This bench measures the two classic cache-side extensions
on top of TSP branch alignment:

* hot/cold splitting (move never-executed blocks behind the hot region),
* Pettis–Hansen procedure ordering over the dynamic call graph,

reporting simulated I-cache misses and total cycles on a deliberately
small cache where placement pressure is visible.
"""

from repro.core import align_program, train_predictors
from repro.core.hot_cold import split_program_hot_cold
from repro.core.proc_order import pettis_hansen_procedure_order, reorder_program
from repro.experiments import format_table, profiled_run
from repro.machine import ALPHA_21164, DirectMappedICache
from repro.machine.timing import simulate_timing
from repro.workloads import compile_benchmark

CASES = (("esp", "ti"), ("com", "st"), ("xli", "q7"))
CACHE_BYTES = 1024


def compute():
    rows = []
    miss_totals = {"tsp": 0, "tsp+split": 0, "tsp+split+order": 0}
    cycle_totals = dict.fromkeys(miss_totals, 0.0)
    for abbr, dataset in CASES:
        module = compile_benchmark(abbr)
        program = module.program
        run = profiled_run(abbr, dataset)
        profile = run.profile
        predictors = train_predictors(program, profile)
        layouts = align_program(program, profile, method="tsp")
        split = split_program_hot_cold(program, layouts, profile)
        order = pettis_hansen_procedure_order(program, profile)
        reordered = reorder_program(program, order)

        variants = {
            "tsp": (program, layouts),
            "tsp+split": (program, split),
            "tsp+split+order": (reordered, split),
        }
        for name, (prog, candidate) in variants.items():
            timing = simulate_timing(
                prog, candidate, profile, run.trace, ALPHA_21164,
                predictors=predictors,
                icache=DirectMappedICache(CACHE_BYTES, 32),
            )
            miss_totals[name] += timing.icache_misses
            cycle_totals[name] += timing.total_cycles
            rows.append([
                f"{abbr}.{dataset}", name, timing.icache_misses,
                timing.total_cycles,
            ])
    return rows, miss_totals, cycle_totals


def test_ablation_code_placement(benchmark, emit):
    rows, misses, cycles = benchmark.pedantic(
        compute, rounds=1, iterations=1, warmup_rounds=0
    )
    emit("ablation_code_placement", format_table(
        ["case", "placement", "i$ misses", "sim cycles"],
        rows,
        title=f"Ablation A5: cache-side placement extensions "
              f"({CACHE_BYTES}-byte direct-mapped I-cache)",
    ))
    # Each extension must not hurt aggregate cache behaviour, and the full
    # stack must strictly help somewhere.
    assert misses["tsp+split"] <= misses["tsp"] * 1.02
    assert misses["tsp+split+order"] <= misses["tsp+split"] * 1.02
    assert misses["tsp+split+order"] < misses["tsp"]
    assert cycles["tsp+split+order"] <= cycles["tsp"] * 1.001
