"""Ablation A6 — profile quality: real profiles vs static estimation.

The paper stresses that "profile-based optimizations require good profiles
to be effective" and cross-validates to quantify imperfect training data.
The extreme end of that axis is *no* profiling at all: Ball–Larus-style
static edge-weight estimation.  This bench aligns every suite case with
(a) the real training profile, (b) the sibling-data-set profile (the
paper's Figure 3 protocol), and (c) the static estimate — then evaluates
all three under the real testing profile.
"""

from repro.core import align_program, evaluate_program, train_predictors
from repro.experiments import format_table, profiled_run
from repro.machine import ALPHA_21164
from repro.profiles.static_estimate import estimate_program_profile
from repro.workloads import compile_benchmark, train_test_pairs


def compute():
    rows = []
    means = {"real": 0.0, "cross": 0.0, "static": 0.0}
    count = 0
    for benchmark, test_ds, train_ds in train_test_pairs():
        module = compile_benchmark(benchmark)
        program = module.program
        testing = profiled_run(benchmark, test_ds).profile
        training_cross = profiled_run(benchmark, train_ds).profile
        static = estimate_program_profile(program)
        predictors = train_predictors(program, testing)

        original = evaluate_program(
            program,
            align_program(program, testing, method="original"),
            testing, ALPHA_21164, predictors=predictors,
        ).total or 1.0

        normalized = {}
        for name, training in (
            ("real", testing),
            ("cross", training_cross),
            ("static", static),
        ):
            layouts = align_program(program, training, method="tsp")
            trained_predictors = train_predictors(program, training)
            penalty = evaluate_program(
                program, layouts, testing, ALPHA_21164,
                predictors=trained_predictors,
            ).total
            normalized[name] = penalty / original
            means[name] += penalty / original
        count += 1
        rows.append([
            f"{benchmark}.{test_ds}", normalized["real"],
            normalized["cross"], normalized["static"],
        ])
    for key in means:
        means[key] /= count
    rows.append(["MEAN", means["real"], means["cross"], means["static"]])
    return rows, means


def test_ablation_static_profile(benchmark, emit):
    rows, means = benchmark.pedantic(
        compute, rounds=1, iterations=1, warmup_rounds=0
    )
    emit("ablation_static_profile", format_table(
        ["case", "real profile", "cross profile", "static estimate"],
        rows,
        title="Ablation A6: training-profile quality "
              "(normalized penalty under the real testing profile)",
    ))
    # Quality ladder: real >= cross >= static (lower normalized is better).
    assert means["real"] <= means["cross"] + 1e-9
    assert means["cross"] <= means["static"] + 1e-9
    # Real profiles retain a decisive edge over profile-free alignment —
    # the paper's point that "profile-based optimizations require good
    # profiles" taken to its extreme.
    assert means["real"] < means["static"] - 0.1
    # Static estimation helps on a majority of cases...
    improved = sum(1 for row in rows[:-1] if row[3] < 0.95)
    assert improved >= len(rows[:-1]) // 2
    # ...but can actively backfire where the heuristics flip a branch's
    # predicted direction (doduc's clamp/convergence conditionals): the
    # mispredict penalty is layout-independent, so a bad static prediction
    # costs more than alignment recovers.
    backfired = [row[0] for row in rows[:-1] if row[3] > 1.0]
    assert backfired, "expected at least one backfiring case"
