"""Ablation A1 — what does the cost model buy?

Compares, across the suite:
* Pettis–Hansen frequency greedy (the paper's "greedy"),
* Calder–Grunwald-style cost-weighted greedy,
* TSP alignment under the real machine model,
* TSP alignment under the UNIT_COST frequency pseudo-model, *evaluated*
  under the real model — isolating the value of microarchitecture-aware
  edge costs (the paper's §2.1 critique of frequency-only greedy: "they
  use frequencies rather than cost models based on the target machine").
"""

from repro.core import align_program, evaluate_program
from repro.experiments import format_table, profiled_run
from repro.machine import ALPHA_21164, UNIT_COST
from repro.workloads import all_cases, compile_benchmark

VARIANTS = ("greedy", "cost-greedy", "tsp-unitcost", "tsp")


def run_variant(program, profile, variant):
    if variant == "tsp-unitcost":
        return align_program(program, profile, method="tsp", model=UNIT_COST)
    if variant == "tsp":
        return align_program(program, profile, method="tsp", model=ALPHA_21164)
    return align_program(
        program, profile, method=variant, model=ALPHA_21164
    )


def compute():
    table = {}
    for abbr, dataset in all_cases():
        module = compile_benchmark(abbr)
        profile = profiled_run(abbr, dataset).profile
        original = evaluate_program(
            module.program,
            align_program(module.program, profile, method="original"),
            profile,
            ALPHA_21164,
        ).total
        row = {}
        for variant in VARIANTS:
            layouts = run_variant(module.program, profile, variant)
            penalty = evaluate_program(
                module.program, layouts, profile, ALPHA_21164
            ).total
            row[variant] = penalty / original if original else 1.0
        table[f"{abbr}.{dataset}"] = row
    return table


def test_ablation_cost_model(benchmark, emit):
    table = benchmark.pedantic(compute, rounds=1, iterations=1, warmup_rounds=0)
    headers = ["case", *VARIANTS]
    rows = [
        [label, *(row[v] for v in VARIANTS)] for label, row in table.items()
    ]
    means = {
        v: sum(row[v] for row in table.values()) / len(table) for v in VARIANTS
    }
    rows.append(["MEAN", *(means[v] for v in VARIANTS)])
    emit("ablation_cost_model", format_table(
        headers, rows,
        title="Ablation A1: cost-model choice "
              "(normalized control penalty under ALPHA 21164)",
    ))

    # The full pipeline (machine-aware TSP) is the best variant on average.
    assert means["tsp"] <= min(means.values()) + 1e-9
    # Machine-aware edge costs matter: unit-cost TSP is worse than real TSP.
    assert means["tsp"] <= means["tsp-unitcost"] + 1e-9
    # Cost-weighted greedy is at least as good as frequency greedy.
    assert means["cost-greedy"] <= means["greedy"] + 1e-3
    # No variant is worse than doing nothing.
    assert all(value <= 1.0 + 1e-9 for row in table.values() for value in row.values())
