#!/usr/bin/env python
"""End-to-end chaos check for the fault-tolerant pipeline.

Runs the paper's benchmark sweep while ``$REPRO_CHAOS``-style sabotage is
armed — workers crash on a schedule, store entries tear mid-write — and
asserts the robustness contract:

1. **No lost procedures** — every procedure of every benchmark appears in
   every method's layout, chaos or not.
2. **Clean quarantine report** — injected crashes are retried, not
   quarantined; the sweep's quarantine count is zero.
3. **Sabotage is invisible in the output** — layouts and penalties under
   chaos are identical to a clean serial baseline.
4. **The store survives** — after disarming, a warm re-run against the
   same store serves checksum-verified hits and still matches baseline.
5. **Worker-count invariance** — jobs=1 and jobs=N produce identical
   results against both cold and warm stores.
6. **The trace tells the story** — the chaos run is traced; the JSONL
   must be schema-valid, its ``executor.retried`` counter must equal the
   sweep's observed retries, and ``repro trace summarize`` renders it
   (printed at the end, so a failing run ships its own diagnosis).

Exit code 0 when every assertion holds, 1 otherwise.

Usage::

    PYTHONPATH=src python benchmarks/chaos_check.py --jobs 4
    PYTHONPATH=src python benchmarks/chaos_check.py --cases com.in tak.t1
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile


def case_signature(case) -> dict:
    """Everything that must be bit-identical across runs of one case."""
    return {
        method: {
            "penalty": outcome.penalty,
            "layouts": {
                proc: tuple(layout.order)
                for proc, layout in outcome.layouts.items()
            },
            "degraded": dict(outcome.degraded),
        }
        for method, outcome in case.methods.items()
    }


def run_sweep(specs, *, jobs: int) -> tuple[dict, int, int]:
    """One full sweep; returns (signatures, retried, quarantined)."""
    from repro.experiments.runner import run_case

    signatures, retried, quarantined = {}, 0, 0
    for benchmark, dataset in specs:
        case = run_case(benchmark, dataset, jobs=jobs, compute_bound=False)
        signatures[f"{benchmark}.{dataset}"] = case_signature(case)
        retried += case.retried
        quarantined += case.quarantined
    return signatures, retried, quarantined


def check(condition: bool, message: str, failures: list[str]) -> None:
    print(("ok:   " if condition else "FAIL: ") + message)
    if not condition:
        failures.append(message)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the chaos runs (default: 4)")
    parser.add_argument("--cases", nargs="*", default=None,
                        help="benchmark cases like com.in (default: all)")
    parser.add_argument("--chaos", default="worker_crash=%5,store_corrupt=%3",
                        help="REPRO_CHAOS spec to arm during the chaos runs")
    parser.add_argument("--store", default=None,
                        help="store directory (default: a fresh temp dir)")
    parser.add_argument("--trace", default=None,
                        help="trace file for the chaos run "
                             "(default: a fresh temp file)")
    args = parser.parse_args(argv)

    from repro import obs
    from repro.faults import CHAOS_ENV
    from repro.pipeline.artifacts import (
        ArtifactStore,
        reset_artifact_cache,
        reset_default_store,
        set_default_store,
    )
    from repro.pipeline.executor import shutdown_pool
    from repro.workloads.suite import all_cases, compile_benchmark

    if args.cases:
        specs = [tuple(case.split(".", 1)) for case in args.cases]
    else:
        specs = list(all_cases())
    procedures = {
        benchmark: {proc.name for proc in compile_benchmark(benchmark).program}
        for benchmark, _ in specs
    }
    store_dir = args.store or tempfile.mkdtemp(prefix="repro-chaos-store-")
    failures: list[str] = []

    # 1. Clean serial baseline: no chaos, no store, no shared state.
    os.environ[CHAOS_ENV] = ""
    reset_default_store()
    reset_artifact_cache()
    baseline, _, _ = run_sweep(specs, jobs=1)
    print(f"baseline: {len(baseline)} case(s), serial, no store")

    # 2. Chaos run, cold store, parallel — traced, so the run documents
    # exactly what the supervisor absorbed.
    trace_path = args.trace or os.path.join(
        tempfile.mkdtemp(prefix="repro-chaos-trace-"), "chaos.jsonl"
    )
    os.environ[CHAOS_ENV] = args.chaos
    set_default_store(ArtifactStore(store_dir))
    reset_artifact_cache()
    obs.start_trace(trace_path, label=f"chaos_check --chaos {args.chaos}")
    chaos_sig, retried, quarantined = run_sweep(specs, jobs=args.jobs)
    shutdown_pool()
    obs.finish_trace()
    print(
        f"chaos ({args.chaos!r}, jobs={args.jobs}): "
        f"{retried} retried, {quarantined} quarantined"
    )
    for label, signature in chaos_sig.items():
        benchmark = label.split(".", 1)[0]
        for method, entry in signature.items():
            check(
                set(entry["layouts"]) == procedures[benchmark],
                f"{label} [{method}]: every procedure present under chaos",
                failures,
            )
    check(quarantined == 0,
          "quarantine report is clean (crashes were retried)", failures)
    check(chaos_sig == baseline,
          "chaos results identical to the clean baseline", failures)

    # 3. Disarm; warm re-run must be served from verified store entries.
    os.environ[CHAOS_ENV] = ""
    store = set_default_store(ArtifactStore(store_dir))
    reset_artifact_cache()
    warm_sig, _, _ = run_sweep(specs, jobs=1)
    check(warm_sig == baseline,
          "warm store re-run identical to baseline", failures)
    # Entries torn by the chaos run surface in that pass as evictions +
    # recomputes — the contract working — and the recomputed artifacts are
    # re-published cleanly, so a second warm pass must serve verified hits.
    evicted = store.stats.evictions
    reset_artifact_cache()
    rewarm_sig, _, _ = run_sweep(specs, jobs=1)
    check(rewarm_sig == baseline,
          "second warm pass identical to baseline", failures)
    check(store.stats.hits > 0,
          f"store served checksum-verified hits ({store.stats.hits} reads; "
          f"{evicted} torn entries evicted and recomputed first)",
          failures)

    # 4. Worker-count invariance against the warm store.
    reset_artifact_cache()
    parallel_sig, _, _ = run_sweep(specs, jobs=args.jobs)
    shutdown_pool()
    check(parallel_sig == baseline,
          f"jobs=1 and jobs={args.jobs} identical (warm store)", failures)

    # 5. The chaos trace is valid, honest, and human-readable.
    with open(trace_path) as handle:
        problems = obs.validate_trace_lines(handle)
    check(not problems,
          f"chaos trace {trace_path} is schema-valid"
          + (f" (first problem: {problems[0]})" if problems else ""),
          failures)
    events = obs.load_trace(trace_path)
    traced = {
        e["name"]: e["value"] for e in events if e["type"] == "counter"
    }
    check(traced.get("executor.retried") == retried,
          f"trace counter executor.retried == {retried} observed retries",
          failures)
    check(traced.get("executor.quarantined") == quarantined,
          "trace counter executor.quarantined matches the sweep", failures)

    print(f"\n--- repro trace summarize {trace_path} ---")
    from repro.cli import main as repro_main

    check(repro_main(["trace", "summarize", trace_path]) == 0,
          "repro trace summarize renders the chaos trace", failures)

    reset_default_store()
    if failures:
        print(f"{len(failures)} chaos check(s) failed", file=sys.stderr)
        return 1
    print("all chaos checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
