#!/usr/bin/env python
"""CI perf smoke for the solver kernel and the chunked pipeline.

Two stages, both against fixed seeded workloads:

1. **Solver microbench** — raw kernel throughput (moves/sec,
   descents/sec) per mode, asserting a conservative moves/sec floor so a
   pure-Python regression in the descent loop (an accidental O(n)
   recompute, a lost don't-look bit) fails fast without any pipeline
   noise around it.
2. **Figure-2 sweep** — the full benchmark sweep at ``--jobs 1`` and
   ``--jobs 4``, asserting a procedures/sec floor and that the chunked
   executor makes ``--jobs 4`` no slower than ``--jobs 1`` (within a
   jitter tolerance — shared CI runners are noisy).

The floors are deliberately far below the numbers in
``BENCH_pipeline.json``: they catch order-of-magnitude regressions (the
pre-kernel pipeline ran ~10 procedures/sec), not scheduling noise on a
busy runner.  The full report is written as JSON for artifact upload
regardless of pass/fail.

Exit code 0 when every check holds, 1 otherwise.

Usage::

    PYTHONPATH=src python benchmarks/perf_check.py --out bench-perf.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import run_bench  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--procs-floor", type=float, default=25.0,
        help="minimum figure2 procedures/sec at --jobs 1 (default: 25, "
             "~2.5x the pre-kernel pipeline)")
    parser.add_argument(
        "--moves-floor", type=float, default=3000.0,
        help="minimum kernel moves/sec per mode (default: 3000)")
    parser.add_argument(
        "--jobs-tolerance", type=float, default=1.15,
        help="jobs=4 may be at most this factor of jobs=1 wall-clock "
             "(default: 1.15)")
    parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("bench-perf.json"),
        help="report path (default: bench-perf.json)")
    args = parser.parse_args(argv)

    checks: list[tuple[str, bool, str]] = []

    def check(name: str, ok: bool, detail: str) -> None:
        checks.append((name, ok, detail))
        print(f"  [{'ok' if ok else 'FAIL'}] {name}: {detail}")

    print("solver microbench...")
    solver = run_bench.bench_solver_microbench()
    for mode, entry in solver["modes"].items():
        check(
            f"solver_moves_floor[{mode}]",
            entry["moves_per_second"] >= args.moves_floor,
            f"{entry['moves_per_second']} moves/s "
            f"(floor {args.moves_floor})",
        )

    print("warming profiling runs (excluded from timings)...")
    run_bench.warm_profiles()
    print("figure-2 sweep, jobs=1, 4 (passes interleaved)...")
    entries = run_bench.bench_figure2_sweep([1, 4])
    figure2 = {entry["jobs"]: entry for entry in entries}
    for jobs in (1, 4):
        print(
            f"  jobs={jobs}: {figure2[jobs]['wall_seconds']}s, "
            f"{figure2[jobs]['procedures_per_second']} procs/s"
        )

    check(
        "procedures_per_second_floor",
        figure2[1]["procedures_per_second"] >= args.procs_floor,
        f"{figure2[1]['procedures_per_second']} procs/s at jobs=1 "
        f"(floor {args.procs_floor})",
    )
    budget = figure2[1]["wall_seconds"] * args.jobs_tolerance
    check(
        "jobs4_no_slower_than_jobs1",
        figure2[4]["wall_seconds"] <= budget,
        f"jobs=4 {figure2[4]['wall_seconds']}s vs jobs=1 "
        f"{figure2[1]['wall_seconds']}s "
        f"(tolerance x{args.jobs_tolerance})",
    )
    check(
        "no_quarantines",
        all(entry["quarantined"] == 0 for entry in figure2.values()),
        "clean sweeps at both worker counts",
    )

    report = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "solver": solver,
        "figure2": [figure2[1], figure2[4]],
        "floors": {
            "procedures_per_second": args.procs_floor,
            "moves_per_second": args.moves_floor,
            "jobs_tolerance": args.jobs_tolerance,
        },
        "checks": [
            {"name": name, "ok": ok, "detail": detail}
            for name, ok, detail in checks
        ],
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    failed = [name for name, ok, _ in checks if not ok]
    if failed:
        print(f"perf smoke FAILED: {', '.join(failed)}")
        return 1
    print("perf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
