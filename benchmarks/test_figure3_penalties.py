"""Figure 3 (top) — cross-validated control penalties.

Paper: training and testing on different data sets dilutes the benefit
mildly (greedy 33% -> 31% removal, TSP 36% -> 34%); the ranking is
unchanged and the bulk of the benefit remains.  xli.ne (a very short run)
is a poor training set for xli.q7.

Ours: same protocol (train on the sibling data set), same assertions.
"""

from repro.experiments import format_table


def test_figure3_penalties(benchmark, emit, figure3):
    headers, rows = benchmark.pedantic(
        figure3.penalty_rows, rounds=1, iterations=1, warmup_rounds=0
    )
    emit("figure3_penalties", format_table(
        headers, rows,
        title="Figure 3 (top): cross-validated normalized control penalties",
    ))

    greedy_self = figure3.mean_removal("greedy", cross=False)
    greedy_cross = figure3.mean_removal("greedy", cross=True)
    tsp_self = figure3.mean_removal("tsp", cross=False)
    tsp_cross = figure3.mean_removal("tsp", cross=True)

    # Mild dilution: cross <= self for both methods...
    assert greedy_cross <= greedy_self + 1e-9
    assert tsp_cross <= tsp_self + 1e-9
    # ...but the bulk of the benefit remains (paper keeps ~94% of it).
    assert greedy_cross > 0.7 * greedy_self
    assert tsp_cross > 0.7 * tsp_self
    # The ranking does not change: TSP still beats greedy cross-validated.
    assert tsp_cross >= greedy_cross - 1e-9

    # The xli pair degrades the most under cross-validation (paper: the
    # very short xli.ne "turns out to be a poor training set" for xli.q7 —
    # data sets that run briefly or touch few branch sites cross-validate
    # worst).
    dilutions = {
        label: (
            figure3.cross_cases[label].normalized_penalty("tsp")
            - figure3.self_cases[label].normalized_penalty("tsp")
        )
        for label in figure3.self_cases
    }
    worst_two = sorted(dilutions, key=dilutions.get)[-2:]
    assert set(worst_two) == {"xli.ne", "xli.q7"}
    assert dilutions["xli.q7"] > 0.01
