"""Figure 2 (left) — normalized control penalties, train = test.

Paper: greedy removes a mean 33% of control penalties, TSP 36%, and the
lower bound shows 36% is all that is achievable; TSP is within 0.3% of the
lower bound on average.  Aligning doduc removes ~2/3 of its penalties.

Ours: the same bar chart as a table.  Exact removal percentages differ
(scaled-down workloads), but every qualitative relationship is asserted:
tsp <= greedy <= original per case, TSP within a whisker of the certified
bound, greedy close behind, doduc's unusually large benefit.
"""

from repro.experiments import format_table


def test_figure2_penalties(benchmark, emit, figure2):
    headers, rows = benchmark.pedantic(
        figure2.penalty_rows, rounds=1, iterations=1, warmup_rounds=0
    )
    emit("figure2_penalties", format_table(
        headers, rows,
        title="Figure 2 (left): normalized control penalties (train = test)",
    ))

    for label, case in figure2.cases.items():
        tsp = case.normalized_penalty("tsp")
        greedy = case.normalized_penalty("greedy")
        assert tsp <= greedy + 1e-9, label
        assert greedy <= 1.0 + 1e-9, label
        assert case.normalized_bound <= tsp + 1e-9, label

    # TSP is near-optimal: within 1% of the certified bound on average
    # (paper: within 0.3% of the Held-Karp bound).
    gaps = [
        case.normalized_penalty("tsp") - case.normalized_bound
        for case in figure2.cases.values()
    ]
    assert sum(gaps) / len(gaps) < 0.01

    # Greedy captures the bulk of the achievable benefit (paper: 33 of 36
    # points) but strictly less than TSP somewhere.
    assert figure2.mean_greedy_removal > 0.6 * figure2.mean_tsp_removal
    assert figure2.mean_tsp_removal > figure2.mean_greedy_removal

    # Aligning doduc removes a large share of its penalties (paper: ~2/3).
    dod = figure2.cases["dod.re"]
    assert dod.normalized_penalty("tsp") < 0.5
