"""Figure 2 (right) — normalized execution times, train = test.

Paper: running times improve 1.19% under greedy and 2.01% under TSP; the
TSP layouts run noticeably faster than greedy ones *beyond* what the
penalty model predicts, traced (via IPROBE) to instruction-cache effects;
su2cor is the exception where alignment barely moves run time.

Ours: the timing simulator reproduces the mechanisms — penalties plus an
I-cache term the aligner does not optimize for.  Absolute improvements are
larger (our simulated machine is branch-dominated; DESIGN.md), but the
shape holds: TSP >= greedy speedups on average, su2cor nearly unmoved.
"""

from repro.experiments import format_table


def test_figure2_runtimes(benchmark, emit, figure2):
    headers, rows = benchmark.pedantic(
        figure2.runtime_rows, rounds=1, iterations=1, warmup_rounds=0
    )
    emit("figure2_runtimes", format_table(
        headers, rows,
        title="Figure 2 (right): normalized execution times (train = test)",
    ))

    for label, case in figure2.cases.items():
        assert case.normalized_cycles("tsp") <= 1.0 + 1e-9, label
        assert case.normalized_cycles("greedy") <= 1.0 + 1e-9, label

    # TSP layouts run at least as fast as greedy ones on average.
    assert figure2.mean_tsp_speedup >= figure2.mean_greedy_speedup - 1e-9

    # su2cor: smallest run-time benefit of the suite (paper: "virtually no
    # effect"), because control penalties are a tiny share of its cycles.
    speedups = {
        label: 1.0 - case.normalized_cycles("tsp")
        for label, case in figure2.cases.items()
    }
    su2_best = max(speedups["su2.re"], speedups["su2.sh"])
    others = [v for k, v in speedups.items() if not k.startswith("su2")]
    assert su2_best < min(others)
    assert su2_best < 0.05

    # Cache effects: layouts change I-cache misses even though the cost
    # model never sees them (the paper's §4.1 observation).
    moved = [
        label for label, case in figure2.cases.items()
        if case.methods["tsp"].timing.icache_misses
        != case.methods["original"].timing.icache_misses
    ]
    assert moved
